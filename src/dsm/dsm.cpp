#include "dsm/dsm.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace multiedge::dsm {

// ---------------------------------------------------------------------------
// DsmSystem
// ---------------------------------------------------------------------------

DsmSystem::DsmSystem(Cluster& cluster, DsmConfig config)
    : cluster_(cluster), cfg_(config) {
  const int n = cluster_.num_nodes();
  // Identical layout on every node: mailbox rings (one per sender), one
  // staging buffer, then the shared region.
  for (int i = 0; i < n; ++i) {
    Endpoint& ep = cluster_.endpoint(i);
    const std::uint64_t mb = ep.alloc(cfg_.mailbox_bytes * n, 64);
    const std::uint64_t st = ep.alloc(cfg_.mailbox_bytes, 64);
    const std::uint64_t sh = ep.alloc(cfg_.shared_bytes, cfg_.page_bytes);
    if (i == 0) {
      mailbox_base_ = mb;
      staging_base_ = st;
      shared_base_ = sh;
    } else {
      assert(mb == mailbox_base_ && st == staging_base_ && sh == shared_base_ &&
             "shared layout must be identical on all nodes");
    }
  }
  shared_brk_ = shared_base_;
  // The collective domain allocates its own symmetric scratch, after the
  // DSM regions so the layout stays identical on every node.
  if (cfg_.enable_coll || cfg_.use_coll_barrier) {
    coll::CollConfig ccfg;
    ccfg.max_data_bytes = cfg_.coll_max_data_bytes;
    coll_domain_ = std::make_unique<coll::CollDomain>(cluster_, ccfg);
  }
  nodes_.reserve(n);
  for (int i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Dsm>(*this, cluster_.endpoint(i), i));
    if (coll_domain_) {
      nodes_.back()->comm_ = std::make_unique<coll::Communicator>(
          *coll_domain_, cluster_.endpoint(i));
    }
  }
}

DsmSystem::~DsmSystem() = default;

std::uint64_t DsmSystem::shared_alloc(std::size_t bytes, std::size_t align) {
  std::uint64_t va = (shared_brk_ + align - 1) / align * align;
  assert(va + bytes <= shared_base_ + cfg_.shared_bytes &&
         "shared region exhausted — raise DsmConfig::shared_bytes");
  shared_brk_ = va + bytes;
  return va;
}

void DsmSystem::run(std::function<void(Dsm&)> worker) {
  const int n = num_nodes();
  // Service fibers handle incoming DSM control messages on each node.
  std::vector<std::unique_ptr<sim::Process>> services;
  for (int i = 0; i < n; ++i) {
    Dsm& d = *nodes_[i];
    d.stop_service_ = false;
    services.push_back(std::make_unique<sim::Process>(
        cluster_.sim(), "dsm-svc" + std::to_string(i),
        [&d] { d.service_loop(); }));
    services.back()->start();
  }
  for (int i = 0; i < n; ++i) {
    Dsm& d = *nodes_[i];
    cluster_.spawn(i, "dsm-worker" + std::to_string(i),
                   [worker, &d](Endpoint&) { worker(d); });
  }
  try {
    cluster_.run();
  } catch (...) {
    // Deadlock diagnosis path: the suspended service fibers cannot be
    // destroyed safely (live stacks); deliberately leak them and rethrow.
    for (auto& s : services) s.release();  // NOLINT
    throw;
  }
  // Workers finished: wind the service fibers down.
  for (int i = 0; i < n; ++i) {
    nodes_[i]->stop_service_ = true;
    nodes_[i]->endpoint().engine().notify_events().notify_all();
  }
  bool all_done = false;
  while (!all_done) {
    all_done = true;
    for (const auto& s : services) all_done = all_done && s->done();
    if (!all_done && !cluster_.sim().step()) {
      throw std::runtime_error("DsmSystem::run: service fibers stuck");
    }
  }
}

// ---------------------------------------------------------------------------
// Dsm: construction & helpers
// ---------------------------------------------------------------------------

Dsm::Dsm(DsmSystem& system, Endpoint& ep, int rank)
    : system_(system),
      ep_(ep),
      rank_(rank),
      // Mailbox window: every DSM control message is a notified put into the
      // destination's per-sender ring. Non-urgent (the service loop blocks on
      // notify events anyway) and unfenced by default — send_msg pins the
      // fence per message, exactly as the raw rdma_write idiom did.
      msg_win_(ep,
               rma::WindowConfig{
                   .base = system.mailbox_base_,
                   .bytes = static_cast<std::uint64_t>(system.cfg_.mailbox_bytes) *
                            static_cast<std::uint64_t>(system.num_nodes()),
                   .tag = 0,
                   .urgent = false,
                   .fenced = false},
               [this](int node) -> Connection& { return conn_to(node); }) {
  pages_.resize(system_.cfg_.shared_bytes / system_.cfg_.page_bytes);
  staging_writer_ =
      MailboxWriter(system_.staging_base_, system_.cfg_.mailbox_bytes);
  const int n = system_.num_nodes();
  mailbox_writers_.resize(n);
  for (int d = 0; d < n; ++d) {
    // My ring at destination d is indexed by my rank.
    mailbox_writers_[d] = MailboxWriter(
        system_.mailbox_base_ + static_cast<std::uint64_t>(rank_) *
                                    system_.cfg_.mailbox_bytes,
        system_.cfg_.mailbox_bytes);
  }
}

int Dsm::num_nodes() const { return system_.num_nodes(); }
const DsmConfig& Dsm::config() const { return system_.cfg_; }

std::uint32_t Dsm::page_of(std::uint64_t va) const {
  assert(va >= system_.shared_base_ &&
         va < system_.shared_base_ + system_.cfg_.shared_bytes);
  return static_cast<std::uint32_t>((va - system_.shared_base_) /
                                    system_.cfg_.page_bytes);
}

int Dsm::home_of(std::uint32_t page) const {
  return static_cast<int>((page / system_.cfg_.home_block_pages) %
                          static_cast<std::uint32_t>(num_nodes()));
}

std::uint64_t Dsm::va_of(std::uint32_t page) const {
  return system_.shared_base_ +
         static_cast<std::uint64_t>(page) * system_.cfg_.page_bytes;
}

Connection& Dsm::conn_to(int node) {
  auto it = conns_.find(node);
  if (it == conns_.end()) {
    it = conns_.emplace(node, ep_.connect(node)).first;
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Memory access & page protocol
// ---------------------------------------------------------------------------

void Dsm::ensure_read(std::uint64_t va, std::size_t len) {
  assert(len > 0);
  const std::uint32_t first = page_of(va);
  const std::uint32_t last = page_of(va + len - 1);
  fetch_batch(first, last);
}

void Dsm::ensure_write(std::uint64_t va, std::size_t len) {
  assert(len > 0);
  const std::uint32_t first = page_of(va);
  const std::uint32_t last = page_of(va + len - 1);
  // Write faults fetch missing pages first (cannot know which bytes the
  // application will overwrite), pipelined like read faults.
  fetch_batch(first, last);
  for (std::uint32_t p = first; p <= last; ++p) {
    if (home_of(p) == rank_) {
      home_dirty_pages_.insert(p);
      continue;
    }
    if (pages_[p].state != PageState::kDirty) write_fault(p);
  }
}

void Dsm::fetch_batch(std::uint32_t first, std::uint32_t last) {
  const DsmConfig& cfg = system_.cfg_;
  // Issue all missing pages of the access range concurrently, then wait —
  // the fault handler's prefetch for contiguous accesses (one trap, one
  // batch of pipelined remote reads instead of one stall per page).
  std::vector<std::pair<std::uint32_t, OpHandle>> fetches;
  // Root span for the fault batch: the remote page reads issued below
  // stitch under it.
  trace::TraceRecorder* tracer = ep_.cluster().tracer();
  const trace::SpanContext ctx =
      tracer != nullptr ? tracer->new_root() : trace::SpanContext{};
  const trace::SpanScope scope(ctx);
  for (std::uint32_t p = first; p <= last; ++p) {
    if (home_of(p) == rank_) continue;  // home copy is always current
    if (pages_[p].state != PageState::kInvalid) continue;
    if (fetches.empty()) {
      stats_.overhead += cfg.fault_cost;
      ep_.app_cpu().consume(cfg.fault_cost);
    }
    stats_.read_faults += 1;
    fetches.emplace_back(
        p, conn_to(home_of(p))
               .rdma_read(va_of(p), va_of(p),
                          static_cast<std::uint32_t>(cfg.page_bytes)));
  }
  if (fetches.empty()) return;
  const sim::Time t0 = ep_.cluster().sim().now();
  for (auto& [p, h] : fetches) {
    h.wait();
    pages_[p].state = PageState::kReadOnly;
    stats_.pages_fetched += 1;
    if (auto* t = ep_.cluster().tracer()) {
      t->record_span(t0, ep_.cluster().sim().now() - t0,
                     trace::EventType::kDsmPageFetch, rank_, -1, -1, p,
                     cfg.page_bytes, ctx);
    }
  }
  stats_.data_wait += ep_.cluster().sim().now() - t0;
}

void Dsm::write_fault(std::uint32_t page) {
  const DsmConfig& cfg = system_.cfg_;
  stats_.write_faults += 1;
  Page& p = pages_[page];
  assert(p.state != PageState::kInvalid);  // fetch_batch ran first

  stats_.overhead += cfg.fault_cost;
  ep_.app_cpu().consume(cfg.fault_cost);

  // Twin for diffing at the next release.
  const sim::Time twin_cost =
      static_cast<sim::Time>(cfg.twin_ns_per_byte * cfg.page_bytes *
                             sim::kNanosecond);
  stats_.overhead += twin_cost;
  ep_.app_cpu().consume(twin_cost);
  p.twin = std::make_unique<std::byte[]>(cfg.page_bytes);
  ep_.memory().read(va_of(page), {p.twin.get(), cfg.page_bytes});
  p.state = PageState::kDirty;
  stats_.twins_created += 1;
  dirty_pages_.push_back(page);
}

NoticeSection Dsm::flush_dirty(int fence_peer) {
  const DsmConfig& cfg = system_.cfg_;
  NoticeSection sec;
  sec.writer = static_cast<std::uint16_t>(rank_);

  // Root span for the release flush: every diff write below stitches
  // under it.
  trace::TraceRecorder* tracer = ep_.cluster().tracer();
  const trace::SpanContext ctx =
      tracer != nullptr ? tracer->new_root() : trace::SpanContext{};
  const trace::SpanScope scope(ctx);

  std::vector<OpHandle> waits;
  for (std::uint32_t page : dirty_pages_) {
    Page& p = pages_[page];
    assert(p.state == PageState::kDirty && p.twin);
    const sim::Time flush_t0 = ep_.cluster().sim().now();
    const std::uint64_t diff_bytes_before = stats_.diff_bytes;

    const sim::Time diff_cost = static_cast<sim::Time>(
        cfg.diff_ns_per_byte * cfg.page_bytes * sim::kNanosecond);
    stats_.overhead += diff_cost;
    ep_.app_cpu().consume(diff_cost);

    // Byte-granularity diff against the twin (word-granularity diffs would
    // corrupt neighbouring writers' sub-word data — e.g. Radix's 4-byte
    // keys), merging runs separated by < 32 clean bytes.
    const std::uint64_t base = va_of(page);
    const std::byte* cur = ep_.memory().view(base, cfg.page_bytes).data();
    const std::byte* twin = p.twin.get();
    std::vector<std::pair<std::size_t, std::size_t>> runs;  // [from, to]
    std::size_t run_start = SIZE_MAX;
    std::size_t last_dirty = 0;
    for (std::size_t w = 0; w < cfg.page_bytes; w += 8) {
      if (std::memcmp(cur + w, twin + w, 8) == 0) continue;
      for (std::size_t b = w; b < w + 8; ++b) {
        if (cur[b] == twin[b]) continue;
        if (run_start == SIZE_MAX) {
          run_start = b;
        } else if (b - last_dirty > 32) {
          runs.emplace_back(run_start, last_dirty);
          run_start = b;
        }
        last_dirty = b;
      }
    }
    if (run_start != SIZE_MAX) runs.emplace_back(run_start, last_dirty);
    if (runs.size() == 1) {
      const auto [from, to] = runs.front();
      const std::uint64_t va = base + from;
      const auto len = static_cast<std::uint32_t>(to - from + 1);
      OpHandle h =
          conn_to(home_of(page)).rdma_write(va, va, len, proto::kOpFlagSolicit);
      if (home_of(page) != fence_peer) waits.push_back(h);
      stats_.diff_bytes += len;
    } else if (!runs.empty()) {
      // Fragmented diff: ship all runs as one scatter-write operation (one
      // op, one wire message) — the way page diffs are classically applied.
      std::vector<ScatterSegment> segs;
      segs.reserve(runs.size());
      for (const auto& [from, to] : runs) {
        segs.push_back(ScatterSegment{from, base + from,
                                      static_cast<std::uint32_t>(to - from + 1)});
        stats_.diff_bytes += to - from + 1;
      }
      OpHandle h = conn_to(home_of(page))
                       .rdma_scatter_write(base, segs, proto::kOpFlagSolicit);
      if (home_of(page) != fence_peer) waits.push_back(h);
    }

    if (auto* t = ep_.cluster().tracer()) {
      t->record_span(flush_t0, ep_.cluster().sim().now() - flush_t0,
                     trace::EventType::kDsmDiffFlush, rank_, -1, -1, page,
                     stats_.diff_bytes - diff_bytes_before, ctx);
    }
    p.twin.reset();
    p.state = p.stale_while_dirty ? PageState::kInvalid : PageState::kReadOnly;
    p.stale_while_dirty = false;
    stats_.diffs_flushed += 1;
    sec.pages.push_back(page);
    since_barrier_pages_.insert(page);
  }
  dirty_pages_.clear();

  for (std::uint32_t page : home_dirty_pages_) {
    sec.pages.push_back(page);
    since_barrier_pages_.insert(page);
  }
  home_dirty_pages_.clear();

  // The ack wait is attributed by the caller (lock or barrier wait).
  for (OpHandle& h : waits) h.wait();
  return sec;
}

void Dsm::apply_notices(const std::vector<NoticeSection>& sections) {
  const DsmConfig& cfg = system_.cfg_;
  sim::Time cost = 0;
  for (const NoticeSection& s : sections) {
    if (s.writer == rank_) continue;
    for (std::uint32_t page : s.pages) {
      if (home_of(page) == rank_) continue;  // home copy stays current
      Page& p = pages_[page];
      cost += cfg.page_bookkeeping_cost;
      if (p.state == PageState::kReadOnly) {
        p.state = PageState::kInvalid;
        stats_.invalidations += 1;
      } else if (p.state == PageState::kDirty) {
        // Page-level multiple writers: keep local writes; the page drops to
        // Invalid after its next flush so the merged home copy is refetched.
        p.stale_while_dirty = true;
        stats_.invalidations += 1;
      }
    }
  }
  if (cost > 0) {
    stats_.overhead += cost;
    ep_.app_cpu().consume(cost);
  }
}

// ---------------------------------------------------------------------------
// Messaging
// ---------------------------------------------------------------------------

void Dsm::send_msg(int dst, Message m, bool fence) {
  m.src = static_cast<std::uint16_t>(rank_);
  stats_.messages += 1;
  if (dst == rank_) {
    handle_msg(m);
    return;
  }
  const std::vector<std::byte> bytes = m.encode();
  assert(bytes.size() <= system_.cfg_.mailbox_bytes);
  // The staging area is a ring: the worker and service fibers can both be
  // inside send_msg at once (rdma_write blocks for its CPU charge before it
  // snapshots the source), so each message stages at a fresh offset.
  const std::uint64_t src_va = staging_writer_.place(bytes.size());
  ep_.memory().write(src_va, bytes);
  const std::uint64_t dst_va = mailbox_writers_[dst].place(bytes.size());
  msg_win_.put_notify(dst, dst_va, src_va,
                      static_cast<std::uint32_t>(bytes.size()), fence);
}

void Dsm::service_loop() {
  while (!stop_service_) {
    rma::NotifyEvent ev;
    // The mailbox window matches tag 0 only: collective signals
    // (coll::kCollTag) belong to the worker fiber's Communicator and must
    // not be stolen here.
    if (msg_win_.test_notify(&ev)) {
      const DsmConfig& cfg = system_.cfg_;
      stats_.overhead += cfg.msg_handling_cost;
      ep_.app_cpu().consume(cfg.msg_handling_cost);
      Message m;
      if (Message::decode(ep_.memory().view(ev.va, ev.bytes), m)) {
        handle_msg(m);
      }
      continue;
    }
    ep_.engine().notify_events().wait();
  }
}

void Dsm::handle_msg(const Message& m) {
  switch (m.type) {
    case MsgType::kLockReq: {
      ManagedLock& ml = managed_locks_[static_cast<int>(m.id)];
      if (!ml.busy) {
        ml.busy = true;
        grant_lock(static_cast<int>(m.id), m.src);
      } else {
        ml.queue.push_back(m.src);
      }
      break;
    }
    case MsgType::kLockGrant: {
      apply_notices(m.notices);
      LockState& ls = lock_states_[static_cast<int>(m.id)];
      ls.held = true;
      ls.waiters.notify_all();
      break;
    }
    case MsgType::kLockRelease: {
      ManagedLock& ml = managed_locks_[static_cast<int>(m.id)];
      for (const NoticeSection& s : m.notices) {
        if (!s.pages.empty()) ml.history.emplace_back(ml.next_epoch, s);
      }
      ++ml.next_epoch;
      if (!ml.queue.empty()) {
        const int next = ml.queue.front();
        ml.queue.pop_front();
        grant_lock(static_cast<int>(m.id), next);
      } else {
        ml.busy = false;
      }
      break;
    }
    case MsgType::kBarrierArrive: {
      BarrierSlot& slot = barrier_slots_[m.epoch];
      slot.arrived += 1;
      for (const NoticeSection& s : m.notices) {
        if (!s.pages.empty()) slot.sections.push_back(s);
      }
      if (slot.arrived == num_nodes()) {
        // Detach this epoch's state before the distribution below blocks:
        // the service fiber may collect next-epoch arrivals meanwhile.
        Message rel;
        rel.type = MsgType::kBarrierRelease;
        rel.id = m.id;
        rel.epoch = m.epoch;
        rel.notices = std::move(slot.sections);
        barrier_slots_.erase(m.epoch);
        for (int i = 0; i < num_nodes(); ++i) {
          if (i != rank_) send_msg(i, rel, /*fence=*/false);
        }
        apply_notices(rel.notices);
        barrier_released_gen_ = rel.epoch;
        barrier_waiters_.notify_all();
      }
      break;
    }
    case MsgType::kBarrierRelease: {
      apply_notices(m.notices);
      barrier_released_gen_ = m.epoch;
      barrier_waiters_.notify_all();
      break;
    }
    case MsgType::kBarrierNotice: {
      BarrierSlot& slot = notice_slots_[m.epoch];
      slot.arrived += 1;
      for (const NoticeSection& s : m.notices) {
        if (!s.pages.empty()) slot.sections.push_back(s);
      }
      barrier_waiters_.notify_all();
      break;
    }
  }
}

void Dsm::grant_lock(int lock_id, int to) {
  ManagedLock& ml = managed_locks_[lock_id];
  Message g;
  g.type = MsgType::kLockGrant;
  g.id = static_cast<std::uint32_t>(lock_id);
  const std::uint32_t seen = ml.last_sent.count(to) ? ml.last_sent[to] : 0;
  for (const auto& [epoch, sec] : ml.history) {
    if (epoch > seen) g.notices.push_back(sec);
  }
  ml.last_sent[to] = ml.next_epoch;
  // Prune history every requester has seen.
  std::uint32_t min_seen = ml.next_epoch;
  for (const auto& [node, e] : ml.last_sent) min_seen = std::min(min_seen, e);
  while (!ml.history.empty() && ml.history.front().first <= min_seen) {
    ml.history.pop_front();
  }
  send_msg(to, g, /*fence=*/false);
}

// ---------------------------------------------------------------------------
// Synchronization API
// ---------------------------------------------------------------------------

void Dsm::lock(int lock_id) {
  const sim::Time t0 = ep_.cluster().sim().now();
  LockState& ls = lock_states_[lock_id];
  assert(!ls.held && !ls.waiting && "recursive lock() is not supported");
  ls.waiting = true;
  Message req;
  req.type = MsgType::kLockReq;
  req.id = static_cast<std::uint32_t>(lock_id);
  send_msg(lock_id % num_nodes(), req, /*fence=*/false);
  while (!ls.held) ls.waiters.wait();
  ls.waiting = false;
  stats_.lock_wait += ep_.cluster().sim().now() - t0;
  stats_.lock_acquires += 1;
}

void Dsm::unlock(int lock_id) {
  const sim::Time t0 = ep_.cluster().sim().now();
  LockState& ls = lock_states_[lock_id];
  assert(ls.held);
  const int mgr = lock_id % num_nodes();
  const bool fence = system_.cfg_.use_fences && mgr != rank_;
  NoticeSection sec = flush_dirty(fence ? mgr : -1);
  ls.held = false;
  Message rel;
  rel.type = MsgType::kLockRelease;
  rel.id = static_cast<std::uint32_t>(lock_id);
  if (!sec.pages.empty()) rel.notices.push_back(std::move(sec));
  send_msg(mgr, rel, fence);
  stats_.lock_wait += ep_.cluster().sim().now() - t0;
}

void Dsm::barrier() {
  const sim::Time t0 = ep_.cluster().sim().now();
  if (comm_ && system_.cfg_.use_coll_barrier) {
    barrier_collective();
  } else {
    barrier_centralized();
  }
  stats_.barrier_wait += ep_.cluster().sim().now() - t0;
  stats_.barriers += 1;
}

void Dsm::barrier_centralized() {
  const int mgr = 0;
  const bool fence = system_.cfg_.use_fences && mgr != rank_;
  flush_dirty(fence ? mgr : -1);

  Message arr;
  arr.type = MsgType::kBarrierArrive;
  arr.id = 0;
  arr.epoch = ++barrier_gen_;
  NoticeSection all;
  all.writer = static_cast<std::uint16_t>(rank_);
  all.pages.assign(since_barrier_pages_.begin(), since_barrier_pages_.end());
  since_barrier_pages_.clear();
  if (!all.pages.empty()) arr.notices.push_back(std::move(all));
  send_msg(mgr, arr, fence);

  while (barrier_released_gen_ < barrier_gen_) barrier_waiters_.wait();
}

// Decentralized barrier: flush, mail the write notice directly to every
// peer (no manager aggregation), rendezvous via the collective
// dissemination barrier, then wait for the n-1 peer notices of this epoch
// and apply them. The notice is sent even when empty — receivers count
// arrivals per epoch, and the count must not depend on what was dirtied.
// All diff acks are awaited before the notices go out (there is no single
// manager a backward fence could order them behind), so any node passing
// the rendezvous implies every flush of the interval has landed at its home.
void Dsm::barrier_collective() {
  flush_dirty(-1);

  Message note;
  note.type = MsgType::kBarrierNotice;
  note.id = 0;
  note.epoch = ++barrier_gen_;
  NoticeSection all;
  all.writer = static_cast<std::uint16_t>(rank_);
  all.pages.assign(since_barrier_pages_.begin(), since_barrier_pages_.end());
  since_barrier_pages_.clear();
  if (!all.pages.empty()) note.notices.push_back(std::move(all));
  // The notice fan-out is one access epoch: n-1 notified puts published
  // together (close() would ring the doorbell if the window were batched;
  // here it just brackets the fan-out for the epoch counters and asserts).
  msg_win_.open();
  for (int i = 0; i < num_nodes(); ++i) {
    if (i != rank_) send_msg(i, note, /*fence=*/false);
  }
  msg_win_.close();

  comm_->barrier();

  auto arrived = [this] {
    auto it = notice_slots_.find(barrier_gen_);
    return it != notice_slots_.end() && it->second.arrived == num_nodes() - 1;
  };
  while (!arrived()) barrier_waiters_.wait();
  auto slot = notice_slots_.extract(barrier_gen_);
  apply_notices(slot.mapped().sections);
  barrier_released_gen_ = barrier_gen_;
}

void Dsm::flush() {
  const sim::Time t0 = ep_.cluster().sim().now();
  flush_dirty(-1);  // pages recorded in since_barrier_pages_ for the barrier
  stats_.data_wait += ep_.cluster().sim().now() - t0;
}

void Dsm::compute(sim::Time t) {
  stats_.compute += t;
  ep_.compute(t);
}

}  // namespace multiedge::dsm
