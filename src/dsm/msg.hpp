// Control-message layer of the DSM, built on MultiEdge remote writes with
// completion notifications — the way GeNIMA used its network interface's
// remote-deposit operations.
//
// Each ordered node pair (s -> d) owns a byte ring in d's shared-metadata
// area. A message is one remote write into the ring (never wrapping across
// the ring end) flagged kOpFlagNotify; the receiver's service fiber consumes
// notifications and decodes messages straight out of its memory.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/api.hpp"

namespace multiedge::dsm {

enum class MsgType : std::uint16_t {
  kLockReq = 1,
  kLockGrant = 2,
  kLockRelease = 3,
  kBarrierArrive = 4,
  kBarrierRelease = 5,
  /// Decentralized barrier (DsmConfig::use_coll_barrier): each node sends
  /// its write notices straight to every peer; the rendezvous itself runs
  /// over the collective dissemination barrier. One notice per peer per
  /// epoch, sent even when empty, so receivers count arrivals.
  kBarrierNotice = 6,
};

/// One write-notice section: pages dirtied by `writer` during an interval.
struct NoticeSection {
  std::uint16_t writer = 0;
  std::vector<std::uint32_t> pages;
};

struct Message {
  MsgType type = MsgType::kLockReq;
  std::uint16_t src = 0;
  std::uint32_t id = 0;     // lock id or barrier id
  std::uint32_t epoch = 0;  // barrier generation
  std::vector<NoticeSection> notices;

  std::vector<std::byte> encode() const;
  static bool decode(std::span<const std::byte> buf, Message& out);
};

/// Sender-side cursor for one peer's ring.
class MailboxWriter {
 public:
  MailboxWriter() = default;
  MailboxWriter(std::uint64_t ring_base, std::size_t ring_bytes)
      : base_(ring_base), cap_(ring_bytes) {}

  /// Pick the destination VA for a message of `len` bytes and advance.
  std::uint64_t place(std::size_t len) {
    if (tail_ + len > cap_) tail_ = 0;  // never wrap a message across the end
    const std::uint64_t va = base_ + tail_;
    tail_ += len;
    return va;
  }

 private:
  std::uint64_t base_ = 0;
  std::size_t cap_ = 0;
  std::uint64_t tail_ = 0;
};

}  // namespace multiedge::dsm
