#include "dsm/msg.hpp"

#include <cstring>

namespace multiedge::dsm {
namespace {

template <typename T>
void put(std::vector<std::byte>& out, T v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof v);
  std::memcpy(out.data() + off, &v, sizeof v);
}

template <typename T>
bool take(std::span<const std::byte> buf, std::size_t& off, T& v) {
  if (off + sizeof v > buf.size()) return false;
  std::memcpy(&v, buf.data() + off, sizeof v);
  off += sizeof v;
  return true;
}

}  // namespace

std::vector<std::byte> Message::encode() const {
  std::vector<std::byte> out;
  put(out, static_cast<std::uint16_t>(type));
  put(out, src);
  put(out, id);
  put(out, epoch);
  put(out, static_cast<std::uint32_t>(notices.size()));
  for (const NoticeSection& s : notices) {
    put(out, s.writer);
    put(out, static_cast<std::uint32_t>(s.pages.size()));
    for (std::uint32_t p : s.pages) put(out, p);
  }
  return out;
}

bool Message::decode(std::span<const std::byte> buf, Message& out) {
  std::size_t off = 0;
  std::uint16_t type = 0;
  std::uint32_t nsections = 0;
  if (!take(buf, off, type) || !take(buf, off, out.src) ||
      !take(buf, off, out.id) || !take(buf, off, out.epoch) ||
      !take(buf, off, nsections)) {
    return false;
  }
  out.type = static_cast<MsgType>(type);
  out.notices.clear();
  out.notices.reserve(nsections);
  for (std::uint32_t i = 0; i < nsections; ++i) {
    NoticeSection s;
    std::uint32_t npages = 0;
    if (!take(buf, off, s.writer) || !take(buf, off, npages)) return false;
    s.pages.resize(npages);
    for (std::uint32_t j = 0; j < npages; ++j) {
      if (!take(buf, off, s.pages[j])) return false;
    }
    out.notices.push_back(std::move(s));
  }
  return true;
}

}  // namespace multiedge::dsm
