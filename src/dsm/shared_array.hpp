// Typed views over DSM shared memory.
//
// Real GeNIMA interposes on loads/stores through page protection; here the
// application kernels declare their access ranges explicitly and then work
// through raw pointers. The page-protocol traffic (faults, fetches, twins,
// diffs) is identical; only the detection mechanism differs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dsm/dsm.hpp"

namespace multiedge::dsm {

template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  SharedArray(Dsm* dsm, std::uint64_t base_va, std::size_t count)
      : dsm_(dsm), base_(base_va), count_(count) {}

  /// Allocate a shared array (host-side, before DsmSystem::run).
  static std::uint64_t layout(DsmSystem& sys, std::size_t count,
                              std::size_t align = 64) {
    return sys.shared_alloc(count * sizeof(T), align);
  }

  std::size_t size() const { return count_; }
  std::uint64_t va(std::size_t i = 0) const { return base_ + i * sizeof(T); }

  /// Read access to [first, first+n): fetches pages, returns a raw pointer.
  const T* read(std::size_t first, std::size_t n) {
    dsm_->ensure_read(va(first), n * sizeof(T));
    return dsm_->template ptr<const T>(va(first));
  }

  /// Write access to [first, first+n): fetches + twins, returns a pointer.
  T* write(std::size_t first, std::size_t n) {
    dsm_->ensure_write(va(first), n * sizeof(T));
    return dsm_->template ptr<T>(va(first));
  }

  /// Single-element conveniences (each checks its page's state).
  T get(std::size_t i) { return *read(i, 1); }
  void put(std::size_t i, const T& v) { *write(i, 1) = v; }
  T& rw(std::size_t i) { return *write(i, 1); }

 private:
  Dsm* dsm_ = nullptr;
  std::uint64_t base_ = 0;
  std::size_t count_ = 0;
};

}  // namespace multiedge::dsm
