// GeNIMA-like page-based software DSM over the MultiEdge public API.
//
// Protocol: home-based lazy release consistency with multiple writers.
//  * Every page has a home node; the home copy is authoritative.
//  * Read fault: fetch the page from its home with one remote read.
//  * Write fault: fetch if invalid, make a twin, write locally.
//  * Release (unlock / barrier arrive): diff each dirty page against its
//    twin, flush the diff runs to the home with remote writes, and produce a
//    write notice (list of dirtied pages).
//  * Acquire (lock grant / barrier release): invalidate cached copies of
//    pages in the received notices (except pages homed locally, which are
//    always current). Pages dirty at notice time are marked stale and drop
//    to Invalid after their next flush (page-level multiple-writer support).
//  * Notice propagation: lock managers keep an epoch-stamped notice history
//    per lock and send each acquirer only what it has not seen; barriers
//    aggregate every node's notices accumulated since its last barrier.
//
// All communication uses rdma_read / rdma_write (+ notifications) — exactly
// the traffic mix the paper's application study stresses. With
// DsmConfig::use_fences (Figure 6 / 2Lu mode), release messages ride the
// same connection as the diffs they cover, ordered by a backward fence,
// instead of waiting for every diff to be acknowledged.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "coll/coll.hpp"
#include "core/api.hpp"
#include "dsm/config.hpp"
#include "dsm/msg.hpp"
#include "rma/rma.hpp"
#include "sim/wait_queue.hpp"

namespace multiedge::dsm {

struct DsmNodeStats {
  sim::Time compute = 0;       // charged via Dsm::compute()
  sim::Time data_wait = 0;     // blocked fetching pages
  sim::Time lock_wait = 0;     // blocked in lock()
  sim::Time barrier_wait = 0;  // blocked in barrier() (incl. flush)
  sim::Time overhead = 0;      // twins, diffs, fault handling, messages

  std::uint64_t read_faults = 0;
  std::uint64_t write_faults = 0;
  std::uint64_t pages_fetched = 0;
  std::uint64_t twins_created = 0;
  std::uint64_t diffs_flushed = 0;
  std::uint64_t diff_bytes = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t barriers = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t messages = 0;
};

class DsmSystem;

/// Per-node DSM instance. All public methods must run in the node's worker
/// fiber (they may block on simulated communication).
class Dsm {
 public:
  Dsm(DsmSystem& system, Endpoint& ep, int rank);
  Dsm(const Dsm&) = delete;
  Dsm& operator=(const Dsm&) = delete;

  int rank() const { return rank_; }
  int num_nodes() const;
  const DsmConfig& config() const;

  // --- shared-memory access ---

  /// Make [va, va+len) readable on this node (fetching pages as needed).
  void ensure_read(std::uint64_t va, std::size_t len);

  /// Make [va, va+len) writable (fetch + twin as needed).
  void ensure_write(std::uint64_t va, std::size_t len);

  /// Raw pointer into this node's copy of shared memory. Only valid for
  /// ranges covered by a preceding ensure_read/ensure_write in the current
  /// synchronization interval.
  template <typename T>
  T* ptr(std::uint64_t va) {
    return ep_.memory().as<T>(va);
  }

  // --- synchronization ---
  void lock(int lock_id);
  void unlock(int lock_id);
  void barrier();

  /// Eagerly flush dirty pages to their homes outside any critical section.
  /// The flushed pages are published through the *next barrier's* write
  /// notices (not through lock releases) — use it for data consumed after a
  /// barrier (e.g. result buffers) to keep critical sections short.
  void flush();

  // --- application time accounting ---
  /// Charge modelled application compute time to this node's CPU.
  void compute(sim::Time t);
  /// Convenience: charge `units * ns_per_unit` nanoseconds.
  void compute_units(double units, double ns_per_unit) {
    compute(static_cast<sim::Time>(units * ns_per_unit * sim::kNanosecond));
  }

  DsmNodeStats& stats() { return stats_; }
  Endpoint& endpoint() { return ep_; }

  /// This node's collective communicator, or nullptr unless
  /// DsmConfig::enable_coll / use_coll_barrier is set. Collective calls run
  /// in the worker fiber on their own notification tag, concurrently with
  /// the DSM's tag-0 mailbox traffic.
  coll::Communicator* comm() { return comm_.get(); }

 private:
  friend class DsmSystem;

  enum class PageState : std::uint8_t { kInvalid, kReadOnly, kDirty };
  struct Page {
    PageState state = PageState::kInvalid;
    bool stale_while_dirty = false;  // invalidated by a notice while dirty
    std::unique_ptr<std::byte[]> twin;
  };
  struct LockState {
    bool held = false;
    bool waiting = false;
    sim::WaitQueue waiters;
  };
  // Lock-manager bookkeeping (lives on the lock's manager node).
  struct ManagedLock {
    bool busy = false;
    std::deque<int> queue;  // waiting requesters
    // Epoch-stamped notice history for propagation between acquirers.
    std::uint32_t next_epoch = 1;
    std::deque<std::pair<std::uint32_t, NoticeSection>> history;
    std::map<int, std::uint32_t> last_sent;  // requester -> epoch
  };
  // Per-epoch arrival collection at the barrier manager. Keyed by epoch:
  // the completion handler blocks while distributing releases, during which
  // the service fiber may already collect next-epoch arrivals.
  struct BarrierSlot {
    int arrived = 0;
    std::vector<NoticeSection> sections;
  };

  std::uint32_t page_of(std::uint64_t va) const;
  int home_of(std::uint32_t page) const;
  std::uint64_t va_of(std::uint32_t page) const;
  Connection& conn_to(int node);

  void fetch_batch(std::uint32_t first, std::uint32_t last);
  void write_fault(std::uint32_t page);

  /// Diff + flush all dirty pages. Returns the write notice. Diffs flushed
  /// to `fence_peer` are not awaited (the caller orders the following
  /// message with a backward fence); pass -1 to await everything.
  NoticeSection flush_dirty(int fence_peer);

  void apply_notices(const std::vector<NoticeSection>& sections);

  void send_msg(int dst, Message m, bool fence);
  void handle_msg(const Message& m);
  void grant_lock(int lock_id, int to);
  void service_loop();
  void barrier_centralized();
  void barrier_collective();

  DsmSystem& system_;
  Endpoint& ep_;
  int rank_;

  std::vector<Page> pages_;
  std::vector<std::uint32_t> dirty_pages_;       // pages with twins
  std::set<std::uint32_t> home_dirty_pages_;     // locally-written home pages
  std::set<std::uint32_t> since_barrier_pages_;  // all flushes since barrier

  std::map<int, Connection> conns_;
  std::vector<MailboxWriter> mailbox_writers_;  // indexed by destination
  MailboxWriter staging_writer_;                // local outbound staging ring
  rma::Window msg_win_;  // tag-0 window over the mailbox rings: every control
                         // message is a notified put, the service loop a
                         // test_notify + notify-event wait

  std::map<int, LockState> lock_states_;
  std::map<int, ManagedLock> managed_locks_;

  std::uint32_t barrier_gen_ = 0;           // my arrivals
  std::uint32_t barrier_released_gen_ = 0;  // releases seen
  sim::WaitQueue barrier_waiters_;
  std::map<std::uint32_t, BarrierSlot> barrier_slots_;  // manager node only
  // use_coll_barrier: per-epoch peer-notice collection (every node).
  std::map<std::uint32_t, BarrierSlot> notice_slots_;
  std::unique_ptr<coll::Communicator> comm_;

  bool stop_service_ = false;
  DsmNodeStats stats_;
};

/// Cluster-wide DSM: builds one Dsm per node, lays out mailboxes and the
/// shared region identically everywhere, and runs worker fibers.
class DsmSystem {
 public:
  DsmSystem(Cluster& cluster, DsmConfig config);
  ~DsmSystem();
  DsmSystem(const DsmSystem&) = delete;
  DsmSystem& operator=(const DsmSystem&) = delete;

  /// Host-side bump allocation in the shared region (identical layout on
  /// every node). Call before run().
  std::uint64_t shared_alloc(std::size_t bytes, std::size_t align = 64);

  Dsm& node(int i) { return *nodes_[i]; }
  int num_nodes() const { return cluster_.num_nodes(); }
  Cluster& cluster() { return cluster_; }
  const DsmConfig& config() const { return cfg_; }
  std::uint64_t shared_base() const { return shared_base_; }

  /// Spawn `worker` on every node, run to completion, stop service fibers.
  void run(std::function<void(Dsm&)> worker);

  /// Aggregate per-node stats (max/avg summaries are up to the caller).
  const DsmNodeStats& node_stats(int i) { return nodes_[i]->stats(); }

 private:
  friend class Dsm;

  Cluster& cluster_;
  DsmConfig cfg_;
  std::uint64_t mailbox_base_ = 0;
  std::uint64_t staging_base_ = 0;
  std::uint64_t shared_base_ = 0;
  std::uint64_t shared_brk_ = 0;
  std::unique_ptr<coll::CollDomain> coll_domain_;  // enable_coll only
  std::vector<std::unique_ptr<Dsm>> nodes_;
  std::vector<std::unique_ptr<sim::Process>> service_procs_;
};

}  // namespace multiedge::dsm
