#include "core/microbench.hpp"

#include <algorithm>
#include <cassert>

namespace multiedge {
namespace {

struct NetDropSnapshot {
  std::uint64_t total = 0;
};

NetDropSnapshot drops_now(Cluster& cluster) {
  NetDropSnapshot s;
  net::Network& net = cluster.network();
  for (int n = 0; n < net.num_nodes(); ++n) {
    for (int r = 0; r < net.rails(); ++r) {
      s.total += net.uplink(n, r).stats().frames_dropped;
      s.total += net.uplink(n, r).stats().frames_corrupted;
      s.total += net.downlink(n, r).stats().frames_dropped;
      s.total += net.downlink(n, r).stats().frames_corrupted;
      s.total += net.nic(n, r).stats().rx_ring_drops;
      s.total += net.nic(n, r).stats().rx_fcs_drops;
    }
  }
  for (int r = 0; r < net.rails(); ++r) {
    s.total += net.rail_switch(r).stats().tail_drops;
    s.total += net.rail_switch(r).stats().fcs_drops;
  }
  return s;
}

int auto_iterations(MicroBench bench, std::size_t size) {
  // Move a fixed data volume so small messages run long enough to reach
  // steady state without making large-message points needlessly slow.
  const std::size_t target = bench == MicroBench::kPingPong
                                 ? std::size_t{2} << 20
                                 : std::size_t{12} << 20;
  const auto it = static_cast<int>(target / std::max<std::size_t>(size, 1));
  return std::clamp(it, 8, bench == MicroBench::kPingPong ? 512 : 4096);
}

}  // namespace

std::string to_string(MicroBench b) {
  switch (b) {
    case MicroBench::kPingPong:
      return "ping-pong";
    case MicroBench::kOneWay:
      return "one-way";
    case MicroBench::kTwoWay:
      return "two-way";
  }
  return "?";
}

MicroResult run_micro(ClusterConfig cfg, MicroBench bench, MicroParams params) {
  cfg.topology.num_nodes = 2;
  const std::size_t size = params.message_bytes;
  const int iters =
      params.iterations > 0 ? params.iterations : auto_iterations(bench, size);

  Cluster cluster(cfg);

  const std::uint64_t src0 = cluster.memory(0).alloc(size);
  const std::uint64_t dst0 = cluster.memory(0).alloc(size);
  const std::uint64_t src1 = cluster.memory(1).alloc(size);
  const std::uint64_t dst1 = cluster.memory(1).alloc(size);

  struct Shared {
    sim::Time t_start = 0;
    sim::Time t_end = 0;
    sim::Time submit_time_total = 0;
    bool measuring = false;
    stats::Counters base0, base1;
    std::uint64_t drops_base = 0;
    trace::LatencyHistogram lat_ns;
  } sh;

  auto begin_measurement = [&](Cluster& c) {
    c.reset_cpu_windows();
    sh.base0 = c.engine(0).aggregate_counters();
    sh.base1 = c.engine(1).aggregate_counters();
    sh.drops_base = drops_now(c).total;
    sh.t_start = c.sim().now();
    sh.measuring = true;
  };

  // Ordering guard for the completion notification of the last one-way op:
  // in out-of-order mode a later op may otherwise complete before earlier
  // ones, ending the measurement early.
  const std::uint16_t last_op_flags = static_cast<std::uint16_t>(
      kOpFlagNotify |
      (cfg.protocol.in_order_delivery ? kOpFlagNone : kOpFlagBackwardFence));

  switch (bench) {
    case MicroBench::kPingPong: {
      cluster.spawn(0, "pp0", [&](Endpoint& ep) {
        Connection c = ep.connect(1);
        // Warmup round trip.
        c.rdma_write(dst1, src0, static_cast<std::uint32_t>(size), kOpFlagNotify);
        ep.wait_notification();
        begin_measurement(cluster);
        for (int i = 0; i < iters; ++i) {
          const sim::Time t0 = cluster.sim().now();
          c.rdma_write(dst1, src0, static_cast<std::uint32_t>(size),
                       kOpFlagNotify);
          ep.wait_notification();
          // Half the round trip, in nanoseconds.
          sh.lat_ns.record(
              static_cast<std::uint64_t>((cluster.sim().now() - t0) / 2000));
        }
        sh.t_end = cluster.sim().now();
      });
      cluster.spawn(1, "pp1", [&](Endpoint& ep) {
        Connection c = ep.accept(0);
        for (int i = 0; i < iters + 1; ++i) {
          ep.wait_notification();
          c.rdma_write(dst0, src1, static_cast<std::uint32_t>(size),
                       kOpFlagNotify);
        }
      });
      break;
    }
    case MicroBench::kOneWay: {
      cluster.spawn(0, "ow0", [&](Endpoint& ep) {
        Connection c = ep.connect(1);
        c.rdma_write(dst1, src0, static_cast<std::uint32_t>(size), kOpFlagNotify)
            .wait();
        begin_measurement(cluster);
        for (int i = 0; i < iters; ++i) {
          const sim::Time t0 = cluster.sim().now();
          c.rdma_write(dst1, src0, static_cast<std::uint32_t>(size),
                       i + 1 == iters ? last_op_flags : kOpFlagNone);
          sh.submit_time_total += cluster.sim().now() - t0;
          sh.lat_ns.record(
              static_cast<std::uint64_t>((cluster.sim().now() - t0) / 1000));
        }
      });
      cluster.spawn(1, "ow1", [&](Endpoint& ep) {
        ep.wait_notification();  // warmup
        ep.wait_notification();  // last measured op applied
        sh.t_end = cluster.sim().now();
      });
      break;
    }
    case MicroBench::kTwoWay: {
      int warmups_done = 0;
      for (int n = 0; n < 2; ++n) {
        cluster.spawn(n, "tw" + std::to_string(n), [&, n](Endpoint& ep) {
          const std::uint64_t my_src = n == 0 ? src0 : src1;
          const std::uint64_t peer_dst = n == 0 ? dst1 : dst0;
          Connection c = n == 0 ? ep.connect(1) : ep.accept(0);
          c.rdma_write(peer_dst, my_src, static_cast<std::uint32_t>(size),
                       kOpFlagNotify)
              .wait();
          ep.wait_notification();  // peer's warmup
          if (++warmups_done == 2 && !sh.measuring) begin_measurement(cluster);
          // Both warmups seen on this node; the other node may start a hair
          // later, which is fine for steady-state measurement.
          for (int i = 0; i < iters; ++i) {
            const sim::Time t0 = cluster.sim().now();
            c.rdma_write(peer_dst, my_src, static_cast<std::uint32_t>(size),
                         i + 1 == iters ? last_op_flags : kOpFlagNone);
            if (n == 0) {
              sh.submit_time_total += cluster.sim().now() - t0;
              sh.lat_ns.record(
                  static_cast<std::uint64_t>((cluster.sim().now() - t0) / 1000));
            }
          }
          ep.wait_notification();  // peer's last op landed here
          sh.t_end = std::max(sh.t_end, cluster.sim().now());
        });
      }
      break;
    }
  }

  cluster.run();
  assert(sh.t_end > sh.t_start);

  MicroResult r;
  const double elapsed_s = sim::to_sec(sh.t_end - sh.t_start);
  const double total_bytes =
      static_cast<double>(size) * iters *
      (bench == MicroBench::kOneWay ? 1.0 : 2.0);
  r.throughput_mbs = total_bytes / 1e6 / elapsed_s;
  if (bench == MicroBench::kPingPong) {
    r.latency_us = sim::to_us(sh.t_end - sh.t_start) / (2.0 * iters);
  } else {
    r.latency_us = sim::to_us(sh.submit_time_total) / iters;
  }
  r.cpu_utilization = std::max(cluster.protocol_cpu_utilization(0),
                               cluster.protocol_cpu_utilization(1));

  const stats::Counters d0 = cluster.engine(0).aggregate_counters().diff(sh.base0);
  const stats::Counters d1 = cluster.engine(1).aggregate_counters().diff(sh.base1);
  stats::Counters all = d0;
  all.merge(d1);
  r.data_frames = all.get("data_frames_rcvd");
  r.ooo_frames = all.get("ooo_frames_rcvd");
  r.ack_frames = all.get("ack_frames_sent");
  r.retransmissions = all.get("retransmissions");
  r.dropped_frames = drops_now(cluster).total - sh.drops_base;
  const std::uint64_t wakeups = all.get("thread_wakeups");
  r.coalescing_factor =
      wakeups ? static_cast<double>(all.get("thread_events")) / wakeups : 0.0;
  r.op_latency_ns = sh.lat_ns;
  return r;
}

}  // namespace multiedge
