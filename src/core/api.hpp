// MultiEdge public user-level API (§2.2).
//
// A Cluster owns the whole simulated system: the network substrate, one
// MemorySpace + two CPUs + protocol engine per node, and the event loop.
// Application code runs as fibers spawned onto nodes; inside a fiber, the
// Endpoint provides the user-level library: connection setup, asynchronous
// remote memory operations with optional fence/notify flags, operation
// handles, and completion notifications.
//
//   multiedge::Cluster cluster{multiedge::config_1l_1g(2)};
//   cluster.spawn(0, "writer", [](multiedge::Endpoint& ep) {
//     auto conn = ep.connect(1);
//     auto h = conn.rdma_write(dst_va, src_va, 4096,
//                              multiedge::kOpFlagNotify);
//     h.wait();
//   });
//   cluster.run();
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "driver/sim_net_driver.hpp"
#include "net/topology.hpp"
#include "proto/config.hpp"
#include "proto/engine.hpp"
#include "proto/memory.hpp"
#include "proto/types.hpp"
#include "sim/cpu.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "trace/rail_health.hpp"
#include "trace/timeseries.hpp"
#include "trace/trace.hpp"

namespace multiedge {

// Re-export the operation flags and notification type at API level.
using proto::kOpFlagBackwardFence;
using proto::kOpFlagBatched;
using proto::kOpFlagForwardFence;
using proto::kOpFlagNone;
using proto::kOpFlagNotify;
using proto::kOpFlagQuietNotify;
using proto::kOpFlagSignaled;
using proto::kOpFlagSolicit;
using proto::kOpFlagUrgent;
using proto::Notification;
using proto::op_flags_tag;
using proto::op_tag_flags;

class Cluster;
class Endpoint;

/// Progress handle for one issued remote memory operation (§2.2: "each
/// operation can, when initiated, return a handle").
class OpHandle {
 public:
  OpHandle() = default;
  explicit OpHandle(proto::SendOpPtr op) : op_(std::move(op)) {}
  OpHandle(proto::SendOpPtr op, Endpoint* ep)
      : op_(std::move(op)), ep_(ep) {}

  /// Non-blocking completion query.
  bool test() const { return op_ && op_->complete; }

  /// Progress query (§2.2): bytes of this operation acknowledged so far.
  std::uint32_t progress_bytes() const { return op_ ? op_->progress_bytes : 0; }
  std::uint32_t total_bytes() const { return op_ ? op_->size : 0; }

  /// Block the calling fiber until the operation completes. A remote write
  /// completes when every frame has been acknowledged; a remote read when
  /// all response data has been applied to local memory. With
  /// batch_submission, waiting first flushes the node's submission rings —
  /// an op parked behind an un-rung doorbell would otherwise never start.
  void wait() const;

  /// Completion hook (runs in protocol context; used by the DSM).
  void on_complete(std::function<void()> fn) const {
    if (!op_) return;
    if (op_->complete) {
      fn();
    } else {
      op_->on_complete = std::move(fn);
    }
  }

  bool valid() const { return op_ != nullptr; }

 private:
  proto::SendOpPtr op_;
  Endpoint* ep_ = nullptr;  // for the flush-on-wait doorbell (may be null)
};

enum class RdmaOp : std::uint8_t { kWrite, kRead };

/// One segment of a scatter write: `length` bytes from local `local_va`,
/// applied at (remote base + remote_offset).
struct ScatterSegment {
  std::uint64_t remote_offset = 0;
  std::uint64_t local_va = 0;
  std::uint32_t length = 0;
};

/// One segment of a gather read: `length` bytes read from (remote base +
/// remote_offset), delivered into local `local_va`.
struct GatherSegment {
  std::uint64_t remote_offset = 0;
  std::uint64_t local_va = 0;
  std::uint32_t length = 0;
};

/// User-level handle of an established point-to-point connection.
class Connection {
 public:
  Connection() = default;
  Connection(Endpoint* ep, proto::Connection* conn) : ep_(ep), conn_(conn) {}

  /// The paper's single initiation primitive:
  ///   RDMA_operation(connection, remote_va, local_va, size, op, flags)
  OpHandle rdma_operation(std::uint64_t remote_va, std::uint64_t local_va,
                          std::uint32_t size, RdmaOp op, std::uint16_t flags);

  /// Remote write: local [local_va, local_va+size) -> remote [remote_va, ...).
  OpHandle rdma_write(std::uint64_t remote_va, std::uint64_t local_va,
                      std::uint32_t size, std::uint16_t flags = 0) {
    return rdma_operation(remote_va, local_va, size, RdmaOp::kWrite, flags);
  }

  /// Remote read: remote [remote_va, ...) -> local [local_va, ...).
  OpHandle rdma_read(std::uint64_t local_va, std::uint64_t remote_va,
                     std::uint32_t size, std::uint16_t flags = 0) {
    return rdma_operation(remote_va, local_va, size, RdmaOp::kRead, flags);
  }

  /// Scatter write: apply all `segments` relative to `remote_base_va` as ONE
  /// operation (one wire message, one completion, one notification). The
  /// natural carrier for DSM page diffs and other fragmented updates.
  OpHandle rdma_scatter_write(std::uint64_t remote_base_va,
                              std::span<const ScatterSegment> segments,
                              std::uint16_t flags = 0);

  /// Gather read, the read-side mirror of rdma_scatter_write: fetch all
  /// `segments` relative to `remote_base_va` as ONE operation — one wire
  /// request, one response message, one completion. Used by collective
  /// reduce trees to collect a child's contribution in a single round trip.
  OpHandle rdma_gather_read(std::span<const GatherSegment> segments,
                            std::uint64_t remote_base_va,
                            std::uint16_t flags = 0);

  /// Ring this connection's submission-ring doorbell: one kernel entry
  /// releases every op batched since the last doorbell. No-op (and free)
  /// when the ring is empty — so unconditional flushes after a burst are
  /// safe on any configuration.
  void flush();

  int peer() const { return conn_->peer_node(); }
  std::size_t num_links() const { return conn_->num_links(); }
  const stats::Counters& counters() const { return conn_->counters(); }
  proto::Connection* protocol_connection() { return conn_; }
  bool valid() const { return conn_ != nullptr; }

 private:
  Endpoint* ep_ = nullptr;
  proto::Connection* conn_ = nullptr;
};

/// Per-node user-level library instance.
class Endpoint {
 public:
  Endpoint(Cluster& cluster, int node_id, proto::Engine& engine,
           proto::MemorySpace& memory, sim::Cpu& app_cpu);

  int node_id() const { return node_id_; }

  // --- connection setup (fiber-blocking) ---
  Connection connect(int peer);
  /// Wait for (and adopt) the connection initiated by `peer`.
  Connection accept(int peer);

  // --- memory ---
  proto::MemorySpace& memory() { return memory_; }
  std::uint64_t alloc(std::size_t bytes, std::size_t align = 64) {
    return memory_.alloc(bytes, align);
  }

  /// Register a memory region (§2.2: the API "includes primitives for
  /// registering memory regions"). Registered source buffers are pinned and
  /// DMA-able, so operations initiated from them skip the user->kernel copy
  /// on the initiating CPU. Receive buffers never need registration.
  void register_memory(std::uint64_t va, std::size_t len);
  void deregister_memory(std::uint64_t va, std::size_t len);
  bool is_registered(std::uint64_t va, std::size_t len) const;

  // --- notifications (fiber-blocking / polling) ---
  /// With `tag < 0` (default) the next notification of any tag is returned,
  /// strictly in arrival (FIFO) order across tags; with `tag >= 0` only
  /// notifications carrying that tag are consumed (per-tag FIFO), leaving
  /// other tags' notifications queued for their consumers.
  Notification wait_notification(int tag = -1);
  bool poll_notification(Notification* out, int tag = -1);
  /// Matching poll (rma layer): consume only a notification carrying `tag`
  /// that also came from `src` (< 0 = any) and targeted `va`
  /// (proto::Engine::kAnyNotifyVa = any). Other notifications stay queued.
  bool poll_notification_match(Notification* out, int tag, int src,
                               std::uint64_t va);

  /// Flush every dirty submission ring on this node (batch_submission):
  /// one kernel entry covers all of them. No-op (and free) when nothing is
  /// batched. Blocking calls (OpHandle::wait, wait_notification) flush
  /// implicitly; issue-then-compute patterns should flush explicitly so the
  /// batched burst starts moving before the computation.
  void flush();

  // --- application-side time accounting ---
  /// Charge application compute time to this node's application CPU.
  void compute(sim::Time t);
  sim::Cpu& app_cpu() { return app_cpu_; }
  proto::Engine& engine() { return engine_; }
  Cluster& cluster() { return cluster_; }

  /// Protocol time spent on the application CPU (syscalls, copies); used
  /// together with the protocol CPU's busy time to report the paper's
  /// "CPU utilization of the communication protocol" out of 200%.
  sim::Time protocol_time_on_app_cpu() const { return proto_app_time_; }

 private:
  friend class Connection;
  /// Charge protocol work to the app CPU (blocking the calling fiber) and
  /// attribute it to protocol accounting.
  void charge_protocol(sim::Time t);

  Cluster& cluster_;
  int node_id_;
  proto::Engine& engine_;
  proto::MemorySpace& memory_;
  sim::Cpu& app_cpu_;
  sim::Time proto_app_time_ = 0;
  /// Registered (pinned) regions: start -> end, non-overlapping.
  std::map<std::uint64_t, std::uint64_t> registered_;
};

/// Everything needed to instantiate a cluster.
struct ClusterConfig {
  net::TopologyConfig topology;
  proto::ProtocolConfig protocol;
  proto::HostCostModel costs;
  std::size_t memory_bytes_per_node = std::size_t{64} << 20;
  /// Event tracing + periodic samplers (off by default: no recorder is
  /// constructed and every hook reduces to one null check).
  trace::TraceConfig trace;
};

/// The paper's experimental setups (§3).
ClusterConfig config_1l_1g(int nodes = 16);
ClusterConfig config_2l_1g(int nodes = 16);
ClusterConfig config_2lu_1g(int nodes = 16);   // out-of-order delivery allowed
ClusterConfig config_1l_10g(int nodes = 4);

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  ~Cluster();

  int num_nodes() const { return cfg_.topology.num_nodes; }
  sim::Simulator& sim() { return sim_; }
  net::Network& network() { return *network_; }
  const ClusterConfig& config() const { return cfg_; }

  Endpoint& endpoint(int node) { return *nodes_[node]->endpoint; }
  proto::Engine& engine(int node) { return *nodes_[node]->engine; }
  proto::MemorySpace& memory(int node) { return *nodes_[node]->memory; }
  sim::Cpu& app_cpu(int node) { return *nodes_[node]->app_cpu; }
  sim::Cpu& proto_cpu(int node) { return *nodes_[node]->proto_cpu; }

  /// Spawn an application fiber on `node`. Runs when the cluster runs.
  void spawn(int node, std::string name, std::function<void(Endpoint&)> body);

  /// Run until every spawned fiber finished. Throws on deadlock (event queue
  /// drained with fibers still blocked).
  void run();

  void run_for(sim::Time d) { sim_.run_until(sim_.now() + d); }

  /// Establish the full connection mesh (every node connects to every other
  /// node) before measurement. Convenience used by benches and the DSM.
  void connect_all_mesh();

  /// Start a protocol CPU-utilization measurement window on all nodes.
  void reset_cpu_windows();

  /// All protocol-invariant violations recorded by every node's checker
  /// (empty unless ClusterConfig::protocol.check_invariants is set — see
  /// proto/invariants.hpp). Tests assert this is empty.
  std::vector<std::string> invariant_violations() const;
  /// Total invariant checks executed across all nodes (0 when disabled).
  std::uint64_t invariant_checks_run() const;

  /// Paper-style protocol CPU utilization of `node` out of 2.0 (two CPUs).
  double protocol_cpu_utilization(int node) const;

  // --- observability (ClusterConfig::trace) ---
  /// The cluster-wide trace recorder, or nullptr when tracing is off.
  trace::TraceRecorder* tracer() { return tracer_.get(); }
  /// Periodic samplers (window occupancy, rail queue depth, outstanding
  /// ops); empty when tracing or sampling is off.
  const std::vector<std::unique_ptr<trace::TimeSeries>>& time_series() const {
    return series_;
  }
  /// Write the Chrome trace-event JSON (events + counter tracks) for this
  /// run. No-op if tracing is off.
  void write_trace(std::ostream& os) const;

  // --- rail-health telemetry (always on; see trace/rail_health.hpp) ---
  /// The egress health aggregator of (node, rail): fed by the node's NIC,
  /// its uplink channel's fault model, and the protocol's retransmissions.
  trace::RailHealth& rail_health(int node, int rail) {
    return *rail_health_[node][rail];
  }
  const trace::RailHealth& rail_health(int node, int rail) const {
    return *rail_health_[node][rail];
  }
  /// One cluster-health JSON document: every node's per-rail snapshot at
  /// the current simulated time, with the scheduler-facing health score.
  void write_cluster_health(std::ostream& os) const;

  // --- flight recorder / postmortem (ClusterConfig::trace.flight_recorder) ---
  /// Register an extra postmortem section (`"name": <json value>`); called
  /// by subsystems that own state worth dumping (membership view, ...).
  void add_postmortem_provider(std::string name,
                               std::function<std::string()> provider);
  /// Dump the black-box state as JSON: trigger reason, last-N trace events,
  /// aggregated counters, rail health, provider sections, and any recorded
  /// invariant violations.
  void write_postmortem(std::ostream& os, const std::string& reason) const;
  /// First-failure hook: writes one postmortem file per cluster (later
  /// triggers are ignored) when the flight recorder or full tracing is on.
  /// Destination: TraceConfig::postmortem_path, else
  /// $MULTIEDGE_POSTMORTEM_DIR/multiedge-postmortem-<n>.json, else the
  /// working directory. Returns the path written ("" if suppressed/failed).
  std::string trigger_postmortem(const std::string& reason);

 private:
  struct NodeState {
    std::unique_ptr<proto::MemorySpace> memory;
    std::unique_ptr<sim::Cpu> app_cpu;
    std::unique_ptr<sim::Cpu> proto_cpu;
    std::vector<std::unique_ptr<driver::SimNetDriver>> drivers;
    std::unique_ptr<proto::Engine> engine;
    std::unique_ptr<Endpoint> endpoint;
    sim::Time proto_app_time_window0 = 0;
    sim::Time window_start = 0;
  };

  void setup_tracing();
  void setup_flight_recorder();
  void attach_tracer_hooks();
  void setup_rail_health();
  void sample_time_series();

  ClusterConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::unique_ptr<sim::Process>> processes_;

  std::unique_ptr<trace::TraceRecorder> tracer_;
  // Per node: [window_occupancy, outstanding_ops, submit_ring,
  //            rail0.tx_q, rail0.rx_q, ...]
  std::vector<std::unique_ptr<trace::TimeSeries>> series_;
  std::unique_ptr<sim::Timer> sample_timer_;

  // rail_health_[node][rail]; always allocated (pure observers, no config).
  std::vector<std::vector<std::unique_ptr<trace::RailHealth>>> rail_health_;
  std::vector<std::pair<std::string, std::function<std::string()>>>
      postmortem_providers_;
  bool postmortem_written_ = false;
};

}  // namespace multiedge
