// The paper's three micro-benchmarks (§3), reusable by the bench binaries,
// the calibration tests, and the ablation studies.
//
//   ping-pong — request/reply remote writes between two nodes; "latency"
//               reports one-way memory-to-memory time per operation.
//   one-way   — back-to-back remote writes in one direction; "latency"
//               reports the host overhead to initiate an operation.
//   two-way   — simultaneous one-way transfers in both directions;
//               throughput is the sum of both nodes' transfer rates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/api.hpp"
#include "trace/histogram.hpp"

namespace multiedge {

enum class MicroBench { kPingPong, kOneWay, kTwoWay };

std::string to_string(MicroBench b);

struct MicroResult {
  /// Ping-pong: one-way memory-to-memory latency per op. One-/two-way: host
  /// overhead to initiate an operation. Microseconds.
  double latency_us = 0;
  /// Payload throughput in MB/s (two-way: both directions summed).
  double throughput_mbs = 0;
  /// Protocol CPU utilization (paper Figure 2(c)): max over the two nodes,
  /// out of 2.0 (two CPUs per node).
  double cpu_utilization = 0;

  // Network-level statistics over the measurement window (§4).
  std::uint64_t data_frames = 0;      // data frames received (both nodes)
  std::uint64_t ooo_frames = 0;       // received out of order
  std::uint64_t ack_frames = 0;       // explicit ACK/NACK frames
  std::uint64_t retransmissions = 0;  // data frames retransmitted
  std::uint64_t dropped_frames = 0;   // lost in the network (links+switches+NICs)

  /// Events processed per protocol-thread wakeup over the measurement window
  /// (§2.6's interrupt-coalescing factor); > 1.0 whenever batching works.
  double coalescing_factor = 0;
  /// Per-operation latency distribution (ns): ping-pong records per-iteration
  /// one-way times, one-/two-way record per-op initiation overhead.
  trace::LatencyHistogram op_latency_ns;

  double ooo_fraction() const {
    return data_frames ? static_cast<double>(ooo_frames) / data_frames : 0.0;
  }
  /// Extra frames beyond the application data (explicit acks + retx).
  double extra_frame_fraction() const {
    return data_frames
               ? static_cast<double>(ack_frames + retransmissions) / data_frames
               : 0.0;
  }
};

struct MicroParams {
  std::size_t message_bytes = 4096;
  /// Operations per direction; 0 = pick automatically so the measurement
  /// moves a fixed volume of data (longer runs for small messages).
  int iterations = 0;
};

/// Run one micro-benchmark on a fresh 2-node cluster built from `cfg`
/// (cfg.topology.num_nodes is forced to 2).
MicroResult run_micro(ClusterConfig cfg, MicroBench bench, MicroParams params);

}  // namespace multiedge
