#include "core/api.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "stats/json.hpp"
#include "trace/export.hpp"

namespace multiedge {

// ---------------------------------------------------------------------------
// Connection / operations
// ---------------------------------------------------------------------------

void OpHandle::wait() const {
  if (op_ && !op_->complete && ep_ != nullptr) ep_->flush();
  while (op_ && !op_->complete) op_->waiters.wait();
}

OpHandle Connection::rdma_operation(std::uint64_t remote_va,
                                    std::uint64_t local_va, std::uint32_t size,
                                    RdmaOp op, std::uint16_t flags) {
  assert(conn_ != nullptr && "operation on an unconnected handle");
  Endpoint& ep = *ep_;
  const proto::HostCostModel& costs = ep.engine().costs();
  // A batched submit is a user-level ring append: the kernel entry is
  // deferred to the doorbell that later drains the ring (submit_op charges
  // it there). Eager submits pay it here, per op, as before.
  const sim::Time entry =
      conn_->will_batch(flags) ? sim::Time{0} : costs.syscall_cost;

  if (op == RdmaOp::kWrite) {
    // §2.3 initiator path: syscall, then copy user data into kernel-level
    // DMA-capable buffers — the host-overhead part of an operation. Sources
    // inside a registered (pinned) region skip the copy: the NIC DMAs
    // straight from user memory.
    const sim::Time copy =
        ep.is_registered(local_va, size) ? 0 : costs.copy_cost_app(size);
    ep.charge_protocol(entry + costs.op_build_cost + copy);
    auto data = ep.memory().view(local_va, size);
    return OpHandle(conn_->submit_write(remote_va, data, flags, ep.app_cpu()),
                    &ep);
  }
  // Reads carry no data out, only the request descriptor.
  ep.charge_protocol(entry + costs.op_build_cost);
  return OpHandle(conn_->submit_read(local_va, remote_va, size, flags,
                                     ep.app_cpu()),
                  &ep);
}

void Connection::flush() {
  assert(conn_ != nullptr);
  if (conn_->submit_ring_depth() == 0) return;
  // The explicit doorbell is the one kernel entry the whole batch shares.
  ep_->charge_protocol(ep_->engine().costs().syscall_cost);
  conn_->flush(ep_->app_cpu());
}

OpHandle Connection::rdma_scatter_write(std::uint64_t remote_base_va,
                                        std::span<const ScatterSegment> segments,
                                        std::uint16_t flags) {
  assert(conn_ != nullptr && !segments.empty());
  Endpoint& ep = *ep_;
  const proto::HostCostModel& costs = ep.engine().costs();

  std::vector<proto::ScatterChunk> chunks;
  std::vector<std::span<const std::byte>> data;
  chunks.reserve(segments.size());
  data.reserve(segments.size());
  std::size_t total = 0;
  for (const ScatterSegment& s : segments) {
    chunks.push_back(proto::ScatterChunk{
        static_cast<std::uint32_t>(s.remote_offset), s.length});
    data.push_back(ep.memory().view(s.local_va, s.length));
    total += s.length;
  }
  const sim::Time entry =
      conn_->will_batch(flags) ? sim::Time{0} : costs.syscall_cost;
  ep.charge_protocol(entry + costs.op_build_cost + costs.copy_cost_app(total));
  const std::vector<std::byte> encoded = proto::encode_scatter_payload(
      chunks, std::span<const std::span<const std::byte>>(data));
  return OpHandle(
      conn_->submit_scatter_write(remote_base_va, encoded, flags, ep.app_cpu()),
      &ep);
}

OpHandle Connection::rdma_gather_read(std::span<const GatherSegment> segments,
                                      std::uint64_t remote_base_va,
                                      std::uint16_t flags) {
  assert(conn_ != nullptr && !segments.empty());
  Endpoint& ep = *ep_;
  const proto::HostCostModel& costs = ep.engine().costs();

  // Segment destinations are encoded relative to the lowest local VA, which
  // becomes the operation's local base for the one response message.
  std::uint64_t local_base = segments.front().local_va;
  for (const GatherSegment& s : segments) {
    local_base = std::min(local_base, s.local_va);
  }
  std::vector<proto::GatherChunk> chunks;
  chunks.reserve(segments.size());
  std::uint32_t total = 0;
  for (const GatherSegment& s : segments) {
    chunks.push_back(proto::GatherChunk{
        static_cast<std::uint32_t>(s.remote_offset),
        static_cast<std::uint32_t>(s.local_va - local_base), s.length});
    total += s.length;
  }
  // Like plain reads, only the request descriptor leaves the node.
  const sim::Time entry =
      conn_->will_batch(flags) ? sim::Time{0} : costs.syscall_cost;
  ep.charge_protocol(entry + costs.op_build_cost);
  const std::vector<std::byte> encoded = proto::encode_gather_request(chunks);
  return OpHandle(conn_->submit_gather_read(local_base, remote_base_va, encoded,
                                            total, flags, ep.app_cpu()),
                  &ep);
}

// ---------------------------------------------------------------------------
// Endpoint
// ---------------------------------------------------------------------------

Endpoint::Endpoint(Cluster& cluster, int node_id, proto::Engine& engine,
                   proto::MemorySpace& memory, sim::Cpu& app_cpu)
    : cluster_(cluster),
      node_id_(node_id),
      engine_(engine),
      memory_(memory),
      app_cpu_(app_cpu) {}

void Endpoint::charge_protocol(sim::Time t) {
  proto_app_time_ += t;
  app_cpu_.consume(t);
}

void Endpoint::compute(sim::Time t) { app_cpu_.consume(t); }

Connection Endpoint::connect(int peer) {
  charge_protocol(engine_.costs().syscall_cost);
  proto::Connection* c = engine_.connect(peer);
  while (c->state() != proto::ConnState::kEstablished) {
    engine_.conn_events().wait();
  }
  return Connection(this, c);
}

Connection Endpoint::accept(int peer) {
  proto::Connection* c = nullptr;
  while ((c = engine_.responder_for(peer)) == nullptr) {
    engine_.conn_events().wait();
  }
  return Connection(this, c);
}

void Endpoint::register_memory(std::uint64_t va, std::size_t len) {
  assert(len > 0 && va + len <= memory_.size());
  // Pinning pages is a system call per region.
  charge_protocol(engine_.costs().syscall_cost);
  registered_[va] = std::max(registered_[va], va + len);
}

void Endpoint::deregister_memory(std::uint64_t va, std::size_t len) {
  (void)len;
  charge_protocol(engine_.costs().syscall_cost);
  registered_.erase(va);
}

bool Endpoint::is_registered(std::uint64_t va, std::size_t len) const {
  auto it = registered_.upper_bound(va);
  if (it == registered_.begin()) return false;
  --it;
  return va + len <= it->second;
}

Notification Endpoint::wait_notification(int tag) {
  // About to block: push out anything still parked in a submission ring
  // (often the request whose reply we are waiting for).
  if (!engine_.has_notification(tag)) flush();
  while (!engine_.has_notification(tag)) {
    engine_.notify_events().wait();
  }
  charge_protocol(engine_.costs().syscall_cost);
  return engine_.pop_notification(tag);
}

bool Endpoint::poll_notification(Notification* out, int tag) {
  if (!engine_.has_notification(tag)) return false;
  *out = engine_.pop_notification(tag);
  return true;
}

bool Endpoint::poll_notification_match(Notification* out, int tag, int src,
                                       std::uint64_t va) {
  return engine_.pop_notification_match(tag, src, va, out);
}

void Endpoint::flush() {
  if (!engine_.has_dirty_rings()) return;
  charge_protocol(engine_.costs().syscall_cost);
  engine_.flush_submission_rings(app_cpu_);
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

namespace {

ClusterConfig base_1g(int nodes, int rails) {
  ClusterConfig cfg;
  cfg.topology.num_nodes = nodes;
  cfg.topology.rails = rails;
  cfg.topology.link.gbps = 1.0;
  cfg.topology.nic = net::broadcom_tg3_config();
  return cfg;
}

}  // namespace

ClusterConfig config_1l_1g(int nodes) { return base_1g(nodes, 1); }

ClusterConfig config_2l_1g(int nodes) {
  ClusterConfig cfg = base_1g(nodes, 2);
  cfg.protocol.in_order_delivery = true;
  return cfg;
}

ClusterConfig config_2lu_1g(int nodes) {
  ClusterConfig cfg = base_1g(nodes, 2);
  cfg.protocol.in_order_delivery = false;
  return cfg;
}

ClusterConfig config_1l_10g(int nodes) {
  ClusterConfig cfg;
  cfg.topology.num_nodes = nodes;
  cfg.topology.rails = 1;
  cfg.topology.link.gbps = 10.0;
  cfg.topology.nic = net::myricom_10g_config();
  return cfg;
}

Cluster::Cluster(ClusterConfig config) : cfg_(std::move(config)) {
  network_ = std::make_unique<net::Network>(sim_, cfg_.topology);
  const int n = cfg_.topology.num_nodes;
  const int rails = cfg_.topology.rails;

  // MAC directory shared by all engines.
  std::vector<std::vector<net::MacAddr>> macs(n);
  for (int i = 0; i < n; ++i) {
    for (int r = 0; r < rails; ++r) macs[i].push_back(network_->nic(i, r).mac());
  }

  nodes_.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto ns = std::make_unique<NodeState>();
    ns->memory = std::make_unique<proto::MemorySpace>(cfg_.memory_bytes_per_node);
    ns->app_cpu =
        std::make_unique<sim::Cpu>(sim_, "n" + std::to_string(i) + ".cpu0");
    ns->proto_cpu =
        std::make_unique<sim::Cpu>(sim_, "n" + std::to_string(i) + ".cpu1");
    ns->engine = std::make_unique<proto::Engine>(sim_, i, *ns->memory,
                                                 *ns->proto_cpu, cfg_.protocol,
                                                 cfg_.costs);
    for (int r = 0; r < rails; ++r) {
      ns->drivers.push_back(
          std::make_unique<driver::SimNetDriver>(network_->nic(i, r)));
      ns->engine->add_rail(ns->drivers.back().get());
    }
    ns->engine->set_mac_table(macs);
    ns->endpoint = std::make_unique<Endpoint>(*this, i, *ns->engine, *ns->memory,
                                              *ns->app_cpu);
    nodes_.push_back(std::move(ns));
  }

  setup_rail_health();
  // First-failure black box: the moment any node's invariant checker records
  // a violation, dump the flight-recorder state (no-op when neither tracing
  // nor the flight recorder is configured).
  for (auto& ns : nodes_) {
    if (auto* ck = ns->engine->checker()) {
      ck->set_on_violation([this](const std::string& v) {
        trigger_postmortem("invariant violation: " + v);
      });
    }
  }

  if (cfg_.trace.enabled) {
    setup_tracing();
  } else if (cfg_.trace.flight_recorder) {
    setup_flight_recorder();
  }
}

void Cluster::setup_rail_health() {
  const int n = cfg_.topology.num_nodes;
  const int rails = cfg_.topology.rails;
  rail_health_.resize(n);
  for (int i = 0; i < n; ++i) {
    std::vector<trace::RailHealth*> raw;
    for (int r = 0; r < rails; ++r) {
      rail_health_[i].push_back(std::make_unique<trace::RailHealth>());
      trace::RailHealth* rh = rail_health_[i].back().get();
      // Egress view of (node, rail): the NIC samples ring depth, the uplink
      // channel reports wire faults, the engine charges retransmissions.
      network_->nic(i, r).set_rail_health(rh);
      network_->uplink(i, r).set_rail_health(rh);
      raw.push_back(rh);
    }
    nodes_[i]->engine->set_rail_health(std::move(raw));
  }
}

void Cluster::attach_tracer_hooks() {
  trace::TraceRecorder* t = tracer_.get();
  const int n = cfg_.topology.num_nodes;
  const int rails = cfg_.topology.rails;
  for (int i = 0; i < n; ++i) {
    nodes_[i]->engine->set_tracer(t);
    for (int r = 0; r < rails; ++r) {
      network_->nic(i, r).set_tracer(t, i, r);
      // Channel faults are attributed to the sender-side node of the link.
      network_->uplink(i, r).set_tracer(t, i, r);
      network_->downlink(i, r).set_tracer(t, i, r);
    }
  }
}

void Cluster::setup_flight_recorder() {
  // Black-box mode: the same hooks feed a much smaller ring and no periodic
  // samplers run — cheap enough to leave on in stress/CI runs, and the last
  // N events are exactly what a postmortem needs.
  tracer_ =
      std::make_unique<trace::TraceRecorder>(cfg_.trace.flight_ring_capacity);
  attach_tracer_hooks();
}

void Cluster::setup_tracing() {
  tracer_ = std::make_unique<trace::TraceRecorder>(cfg_.trace.ring_capacity);
  attach_tracer_hooks();

  if (cfg_.trace.sample_interval <= 0) return;
  const int n = cfg_.topology.num_nodes;
  const int rails = cfg_.topology.rails;
  for (int i = 0; i < n; ++i) {
    const std::string p = "n" + std::to_string(i) + ".";
    series_.push_back(
        std::make_unique<trace::TimeSeries>(p + "window_occupancy"));
    series_.push_back(
        std::make_unique<trace::TimeSeries>(p + "outstanding_ops"));
    series_.push_back(std::make_unique<trace::TimeSeries>(p + "submit_ring"));
    for (int r = 0; r < rails; ++r) {
      const std::string rp = p + "rail" + std::to_string(r) + ".";
      series_.push_back(std::make_unique<trace::TimeSeries>(rp + "tx_q"));
      series_.push_back(std::make_unique<trace::TimeSeries>(rp + "rx_q"));
    }
  }
  sample_timer_ = std::make_unique<sim::Timer>(sim_, [this] {
    sample_time_series();
    sample_timer_->schedule(cfg_.trace.sample_interval);
  });
  sample_timer_->schedule(cfg_.trace.sample_interval);
}

void Cluster::sample_time_series() {
  // Pure observation: reads state, charges no CPU, schedules nothing but its
  // own timer — so sampling cannot perturb protocol behaviour.
  const sim::Time now = sim_.now();
  const int rails = cfg_.topology.rails;
  std::size_t s = 0;
  for (int i = 0; i < num_nodes(); ++i) {
    double window = 0, ops = 0, ring = 0;
    for (const auto& c : nodes_[i]->engine->connections()) {
      window += static_cast<double>(c->frames_in_flight());
      ops += static_cast<double>(c->outstanding_ops());
      ring += static_cast<double>(c->submit_ring_depth());
    }
    series_[s++]->sample(now, window);
    series_[s++]->sample(now, ops);
    series_[s++]->sample(now, ring);
    for (int r = 0; r < rails; ++r) {
      const net::Nic& nic = network_->nic(i, r);
      series_[s++]->sample(
          now, static_cast<double>(nic.config().tx_ring_slots - nic.tx_space()));
      series_[s++]->sample(now, static_cast<double>(nic.rx_pending()));
    }
  }
}

void Cluster::write_trace(std::ostream& os) const {
  if (!tracer_) return;
  std::vector<const trace::TimeSeries*> series;
  series.reserve(series_.size());
  for (const auto& s : series_) series.push_back(s.get());
  trace::write_chrome_trace(os, *tracer_, series);
}

void Cluster::write_cluster_health(std::ostream& os) const {
  const sim::Time now = sim_.now();
  os << "{\"sim_time_ps\":" << now << ",\"nodes\":[";
  for (int i = 0; i < num_nodes(); ++i) {
    os << (i ? "," : "") << "\n  {\"node\":" << i << ",\"rails\":[";
    for (std::size_t r = 0; r < rail_health_[i].size(); ++r) {
      os << (r ? "," : "")
         << trace::RailHealth::to_json(rail_health_[i][r]->snapshot(now));
    }
    os << "]}";
  }
  os << "\n]}\n";
}

void Cluster::add_postmortem_provider(std::string name,
                                      std::function<std::string()> provider) {
  postmortem_providers_.emplace_back(std::move(name), std::move(provider));
}

void Cluster::write_postmortem(std::ostream& os,
                               const std::string& reason) const {
  const sim::Time now = sim_.now();
  os << "{\n  \"reason\": \"" << stats::json::escape(reason) << "\",\n";
  os << "  \"sim_time_ps\": " << now << ",\n";

  // Last-N events from the black-box ring, oldest first.
  os << "  \"events\": [";
  bool first = true;
  if (tracer_) {
    for (const trace::Event& e : tracer_->events()) {
      os << (first ? "" : ",") << "\n    {\"ts\":" << e.ts << ",\"type\":\""
         << trace::event_name(e.type) << "\",\"node\":" << e.node
         << ",\"rail\":" << e.rail << ",\"conn\":" << e.conn << ",\"a\":" << e.a
         << ",\"b\":" << e.b;
      if (e.dur > 0) os << ",\"dur\":" << e.dur;
      if (e.trace_id != 0) {
        os << ",\"trace\":" << e.trace_id << ",\"span\":" << e.span_id
           << ",\"parent\":" << e.parent_span;
      }
      os << "}";
      first = false;
    }
  }
  os << "\n  ],\n";

  stats::Counters agg;
  for (const auto& ns : nodes_) agg.merge(ns->engine->aggregate_counters());
  os << "  \"counters\": {";
  first = true;
  for (const auto& [name, v] : agg.all()) {
    os << (first ? "" : ",") << "\n    \"" << stats::json::escape(name)
       << "\": " << v;
    first = false;
  }
  os << "\n  },\n";

  os << "  \"rail_health\": {";
  for (int i = 0; i < num_nodes(); ++i) {
    os << (i ? "," : "") << "\n    \"node" << i << "\": [";
    for (std::size_t r = 0; r < rail_health_[i].size(); ++r) {
      os << (r ? "," : "")
         << trace::RailHealth::to_json(rail_health_[i][r]->snapshot(now));
    }
    os << "]";
  }
  os << "\n  },\n";

  os << "  \"invariant_violations\": [";
  first = true;
  for (const std::string& v : invariant_violations()) {
    os << (first ? "" : ",") << "\n    \"" << stats::json::escape(v) << "\"";
    first = false;
  }
  os << "\n  ]";

  // Subsystem sections (e.g. the membership view) registered at setup time.
  for (const auto& [name, provider] : postmortem_providers_) {
    os << ",\n  \"" << stats::json::escape(name) << "\": " << provider();
  }
  os << "\n}\n";
}

std::string Cluster::trigger_postmortem(const std::string& reason) {
  // First failure wins: a broken invariant usually cascades, and the ring
  // right after the first trip is the interesting one.
  if (postmortem_written_) return "";
  if (!cfg_.trace.flight_recorder && !cfg_.trace.enabled) return "";
  postmortem_written_ = true;

  std::string path = cfg_.trace.postmortem_path;
  if (path.empty()) {
    // Several clusters can live in one test binary; number the dumps
    // process-wide so they never clobber each other.
    static int seq = 0;
    const char* dir = std::getenv("MULTIEDGE_POSTMORTEM_DIR");
    path = (dir != nullptr ? std::string(dir) : std::string(".")) +
           "/multiedge-postmortem-" + std::to_string(seq++) + ".json";
  }
  std::ofstream os(path);
  if (!os) return "";
  write_postmortem(os, reason);
  return path;
}

Cluster::~Cluster() {
  // Fibers must not outlive the cluster in a suspended state; drain anything
  // still runnable so their stacks unwind naturally.
  for (auto& p : processes_) {
    if (!p->done()) {
      // Deliberately leak un-finished fibers' Process objects rather than
      // destroying a live stack; tests always run() to completion.
      p.release();  // NOLINT(bugprone-unused-return-value)
    }
  }
}

void Cluster::spawn(int node, std::string name,
                    std::function<void(Endpoint&)> body) {
  Endpoint& ep = endpoint(node);
  auto proc = std::make_unique<sim::Process>(
      sim_, std::move(name), [body = std::move(body), &ep] { body(ep); });
  proc->start();
  processes_.push_back(std::move(proc));
}

void Cluster::run() {
  while (true) {
    bool all_done = true;
    for (const auto& p : processes_) all_done = all_done && p->done();
    if (all_done) return;
    if (!sim_.step()) {
      throw std::runtime_error(
          "Cluster::run(): event queue drained with fibers still blocked "
          "(deadlock)");
    }
  }
}

void Cluster::connect_all_mesh() {
  const int n = num_nodes();
  std::vector<std::unique_ptr<sim::Process>> procs;
  int remaining = n;
  for (int i = 0; i < n; ++i) {
    procs.push_back(std::make_unique<sim::Process>(
        sim_, "mesh" + std::to_string(i), [this, i, n, &remaining] {
          for (int j = 0; j < n; ++j) {
            if (j != i) endpoint(i).connect(j);
          }
          --remaining;
        }));
    procs.back()->start();
  }
  while (remaining > 0) {
    if (!sim_.step()) {
      throw std::runtime_error("connect_all_mesh(): deadlock");
    }
  }
}

std::vector<std::string> Cluster::invariant_violations() const {
  std::vector<std::string> all;
  for (const auto& ns : nodes_) {
    if (const proto::InvariantChecker* ck = ns->engine->checker()) {
      all.insert(all.end(), ck->violations().begin(), ck->violations().end());
    }
  }
  return all;
}

std::uint64_t Cluster::invariant_checks_run() const {
  std::uint64_t total = 0;
  for (const auto& ns : nodes_) {
    if (const proto::InvariantChecker* ck = ns->engine->checker()) {
      total += ck->checks_run();
    }
  }
  return total;
}

void Cluster::reset_cpu_windows() {
  for (auto& ns : nodes_) {
    ns->app_cpu->reset_window();
    ns->proto_cpu->reset_window();
    ns->proto_app_time_window0 = ns->endpoint->protocol_time_on_app_cpu();
    ns->window_start = sim_.now();
  }
}

double Cluster::protocol_cpu_utilization(int node) const {
  const NodeState& ns = *nodes_[node];
  const sim::Time elapsed = sim_.now() - ns.window_start;
  if (elapsed <= 0) return 0.0;
  const sim::Time app_proto =
      ns.endpoint->protocol_time_on_app_cpu() - ns.proto_app_time_window0;
  const double app_frac = static_cast<double>(app_proto) / elapsed;
  return ns.proto_cpu->utilization() + app_frac;
}

}  // namespace multiedge
