// Log-bucketed latency histogram.
//
// Buckets are HdrHistogram-style: 16 linear sub-buckets per power of two,
// which bounds relative quantile error at 1/16 (6.25%) while keeping the
// bucket array small (~1 KiB) and record() branch-free apart from the
// bit-scan. Values are dimensionless — callers pick the unit (this repo
// records nanoseconds of simulated time).
#pragma once

#include <cstdint>
#include <vector>

namespace multiedge::trace {

class LatencyHistogram {
 public:
  void record(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at quantile q in [0,1] (q=0.5 -> p50). Returns the lower edge of
  /// the containing bucket, clamped to [min, max]; exact when count is 0 or
  /// values fit a single bucket.
  std::uint64_t percentile(double q) const;

  std::uint64_t p50() const { return percentile(0.50); }
  std::uint64_t p95() const { return percentile(0.95); }
  std::uint64_t p99() const { return percentile(0.99); }

  void merge(const LatencyHistogram& other);
  void clear();

 private:
  static std::size_t bucket_index(std::uint64_t v);
  static std::uint64_t bucket_floor(std::size_t idx);

  std::vector<std::uint64_t> buckets_;  // grown on demand
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace multiedge::trace
