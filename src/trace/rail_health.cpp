#include "trace/rail_health.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/json.hpp"

namespace multiedge::trace {

void RailHealth::fold(sim::Time now) const {
  if (now <= last_fold_) return;
  const double dt = static_cast<double>(now - last_fold_);
  const double decay = std::exp(-dt / static_cast<double>(kTau));
  send_rate_ *= decay;
  loss_rate_ *= decay;
  retransmit_rate_ *= decay;
  last_fold_ = now;
}

RailHealth::Snapshot RailHealth::snapshot(sim::Time now) const {
  fold(now);
  Snapshot s;
  s.frames_sent = frames_sent_;
  s.bytes_sent = bytes_sent_;
  s.drops = drops_;
  s.burst_drops = burst_drops_;
  s.corrupts = corrupts_;
  s.retransmits = retransmits_;
  s.burst_transitions = burst_transitions_;
  s.outage_flaps = outage_flaps_;
  // The EWMAs accumulate "1.0 per event, decayed over tau"; dividing by tau
  // (in ms) converts to events/ms.
  const double tau_ms = static_cast<double>(kTau) / 1e9;
  s.send_rate = send_rate_ / tau_ms;
  s.loss_rate = loss_rate_ / tau_ms;
  s.retransmit_rate = retransmit_rate_ / tau_ms;
  s.tx_queue_ewma = tx_queue_ewma_;
  s.rx_queue_ewma = rx_queue_ewma_;
  s.tx_queue = last_tx_queue_;
  s.rx_queue = last_rx_queue_;
  s.in_burst = in_burst_;
  s.in_outage = in_outage_;
  return s;
}

double RailHealth::Snapshot::score() const {
  if (in_outage) return 1.0;
  // Fraction of recent sends that needed recovery, padded by burst state.
  const double sends = std::max(send_rate, 1.0);
  double sc = (loss_rate + retransmit_rate) / sends;
  if (in_burst) sc += 0.25;
  return std::min(sc, 1.0);
}

std::string RailHealth::to_json(const Snapshot& s) {
  std::ostringstream os;
  os << "{\"frames_sent\": " << s.frames_sent
     << ", \"bytes_sent\": " << s.bytes_sent << ", \"drops\": " << s.drops
     << ", \"burst_drops\": " << s.burst_drops
     << ", \"corrupts\": " << s.corrupts
     << ", \"retransmits\": " << s.retransmits
     << ", \"burst_transitions\": " << s.burst_transitions
     << ", \"outage_flaps\": " << s.outage_flaps
     << ", \"send_rate_per_ms\": " << stats::json::number(s.send_rate)
     << ", \"loss_rate_per_ms\": " << stats::json::number(s.loss_rate)
     << ", \"retransmit_rate_per_ms\": "
     << stats::json::number(s.retransmit_rate)
     << ", \"tx_queue_ewma\": " << stats::json::number(s.tx_queue_ewma)
     << ", \"rx_queue_ewma\": " << stats::json::number(s.rx_queue_ewma)
     << ", \"tx_queue\": " << s.tx_queue << ", \"rx_queue\": " << s.rx_queue
     << ", \"in_burst\": " << (s.in_burst ? "true" : "false")
     << ", \"in_outage\": " << (s.in_outage ? "true" : "false")
     << ", \"score\": " << stats::json::number(s.score()) << "}";
  return os.str();
}

}  // namespace multiedge::trace
