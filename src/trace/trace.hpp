// Protocol-wide event tracing.
//
// A TraceRecorder is a fixed-capacity ring buffer of typed events keyed on
// simulated time. Every layer of the stack (NIC, wire, protocol engine,
// connection, DSM) holds a nullable TraceRecorder* and records through it;
// when tracing is disabled the Cluster never constructs a recorder, so the
// per-hook cost is a single null-pointer branch and zero allocation.
//
// Recording never consumes simulated time or perturbs the event queue: the
// trace is a pure observer, so enabling it cannot change protocol behaviour
// or any measured (simulated) latency/throughput number.
//
// Events carry dense identifiers (node, rail, connection, sequence) rather
// than strings; the Chrome-trace exporter (trace/export.hpp) turns them into
// per-node×rail and per-connection tracks loadable in Perfetto.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/process.hpp"
#include "sim/time.hpp"

namespace multiedge::trace {

enum class EventType : std::uint8_t {
  // NIC layer (below the protocol header, so no seq here).
  kNicTx,        // frame handed to the wire; a=payload bytes, b=wire bytes
  kNicRx,        // frame DMA'd into the rx ring; a=payload bytes, b=wire bytes
  kIrq,          // interrupt fired; b=events coalesced into this IRQ
  // Wire (channel fault model).
  kWireDrop,     // frame lost on the wire; a=payload bytes
  kWireCorrupt,  // frame FCS-corrupted on the wire; a=payload bytes
  // Protocol engine.
  kThreadBatch,  // protocol-thread pass; a=completions reaped, b=frames in batch
  // Connection.
  kDataTx,       // DATA frame (re)transmitted; a=seq, b=payload bytes
  kDataRx,       // DATA frame accepted; a=seq, b=payload bytes
  kAckTx,        // explicit ACK sent; a=cumulative ack
  kAckRx,        // ACK processed; a=cumulative ack, b=nack count
  kRetransmit,   // frame retransmitted; a=seq
  kWindowStall,  // sender blocked on the sliding window; a=snd_una
  kWindowResume, // window reopened; a=snd_una
  kFenceBlocked, // op held back by a fence; a=op id
  kFenceRelease, // fence released blocked ops; a=ops released
  kOpSubmit,     // user op submitted; a=op id, b=bytes
  kOpComplete,   // user op completed (duration event); a=op id, b=bytes
  kDoorbell,     // submission-ring doorbell rung; a=descriptors drained,
                 // b=frames released past the barrier (DESIGN.md §15)
  // DSM.
  kDsmPageFetch, // remote page fetch (duration event); a=page, b=bytes
  kDsmDiffFlush, // dirty-diff writeback (duration event); a=pages, b=bytes
  // Collectives (src/coll).
  kCollOp,       // one collective op (duration event); a=(kind<<8)|algo, b=bytes
  kCollRound,    // one round/step within a collective; a=round, b=bytes
  // Cross-node causal spans (carry a trace context; see SpanContext).
  kOpRecv,       // receiver-side op span: first fragment -> op applied;
                 // a=op id, b=bytes (parent = the initiator's op span)
  // Key-value store (src/kv).
  kKvOp,         // client-side KV op span; a=op code, b=key+value bytes
  kKvHandler,    // primary RPC handler span; a=op code, b=key+value bytes
  kKvRepl,       // backup replication-apply span; a=op code, b=bytes
  // Membership (src/member).
  kMemberProbe,  // one SWIM probe round-trip span; a=target node, b=probe seq
  // Serving-tier connection broker (src/svc).
  kSvcOp,        // brokered op span, submit -> completion (queueing included);
                 // a=(tenant id<<8)|kind, b=bytes
  // Notified-access RMA layer (src/rma).
  kRmaOp,        // one window op span, issue -> local completion;
                 // a=peer node, b=bytes
  kRmaSubmit,    // instant anchoring a window op's span the moment it is
                 // issued (like kOpSubmit: a quiet fire-and-forget op whose
                 // ack never lands still resolves in the stitched tree);
                 // a=peer node, b=bytes
};

/// Single source of truth for which event types are duration (span) events —
/// everything else exports as an instant. The exporter and tests both
/// consult this table, so a new span type cannot silently export as an
/// instant event.
constexpr bool is_span(EventType t) {
  switch (t) {
    case EventType::kOpComplete:
    case EventType::kOpRecv:
    case EventType::kDsmPageFetch:
    case EventType::kDsmDiffFlush:
    case EventType::kCollOp:
    case EventType::kKvOp:
    case EventType::kKvHandler:
    case EventType::kKvRepl:
    case EventType::kMemberProbe:
    case EventType::kSvcOp:
    case EventType::kRmaOp:
      return true;
    default:
      return false;
  }
}

/// Stable short name for an event type ("nic_tx", "op_complete", ...).
std::string_view event_name(EventType t);

/// Perfetto category for an event type ("nic", "wire", "engine", "conn",
/// "dsm") — used as the Chrome-trace "cat" field.
std::string_view event_category(EventType t);

/// Compact causal trace context: one distributed operation (a KV PUT, a
/// collective, a membership probe, a DSM fetch batch) owns a trace id, and
/// every span stitched under it carries that id plus its own span id. Both
/// ids are allocated from monotonic counters on the single cluster-wide
/// TraceRecorder, so they are deterministic across same-seed runs. id 0
/// means "no context" — untraced traffic stays bit-identical in the export.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool active() const { return trace_id != 0; }
};

/// One trace record. 72 bytes; identifiers are dense ints, never strings.
struct Event {
  sim::Time ts = 0;    ///< event time (ps); start time for duration events
  sim::Time dur = 0;   ///< duration (ps) for span events (see is_span)
  std::uint64_t a = 0; ///< primary payload (seq, op id, page, ...)
  std::uint64_t b = 0; ///< secondary payload (bytes, batch size, ...)
  std::uint64_t trace_id = 0;     ///< causal trace id, 0 = untraced
  std::uint64_t span_id = 0;      ///< this span's id (span events only)
  std::uint64_t parent_span = 0;  ///< parent span id, 0 = root
  std::int32_t conn = -1;  ///< connection local id, -1 if n/a
  std::int16_t node = -1;  ///< node id, -1 if n/a
  std::int16_t rail = -1;  ///< rail id, -1 if n/a
  EventType type = EventType::kNicTx;
};

struct TraceConfig {
  bool enabled = false;
  /// Ring capacity in events; oldest events are overwritten on overflow.
  std::size_t ring_capacity = 1 << 18;
  /// Cadence of the periodic time-series samplers (window occupancy,
  /// queue depth, outstanding ops). 0 disables sampling.
  sim::Time sample_interval = 10'000'000;  // 10 us
  /// Flight recorder: always-on black-box mode. When set (and full tracing
  /// is off), the cluster allocates a SMALL ring with the same hooks but no
  /// periodic samplers; on an invariant violation / peer failure the last-N
  /// events are dumped to a postmortem file (Cluster::write_postmortem).
  bool flight_recorder = false;
  std::size_t flight_ring_capacity = 1 << 12;
  /// Postmortem dump destination. Empty: $MULTIEDGE_POSTMORTEM_DIR/
  /// multiedge-postmortem-<n>.json, or ./multiedge-postmortem-<n>.json.
  std::string postmortem_path;
};

/// Fixed-capacity ring buffer of events. The buffer is allocated once at
/// construction; record() never allocates.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity) : ring_(capacity) {}

  void record(Event e) {
    if (ring_.empty()) return;
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
    ++total_;
  }

  /// Convenience for instant events. An instant may still carry a span
  /// context (e.g. op_submit anchors the submit-side span id the moment the
  /// op enters the engine, so a fire-and-forget op that never sees its ack
  /// still appears in the stitched timeline).
  void record(sim::Time ts, EventType type, int node, int rail, int conn,
              std::uint64_t a = 0, std::uint64_t b = 0, SpanContext ctx = {},
              std::uint64_t parent_span = 0) {
    Event e;
    e.ts = ts;
    e.type = type;
    e.node = static_cast<std::int16_t>(node);
    e.rail = static_cast<std::int16_t>(rail);
    e.conn = conn;
    e.a = a;
    e.b = b;
    e.trace_id = ctx.trace_id;
    e.span_id = ctx.span_id;
    e.parent_span = parent_span;
    record(e);
  }

  /// Convenience for duration events (ts = start, dur = length). The
  /// trailing trace-context fields default to "untraced" so existing call
  /// sites keep emitting byte-identical events.
  void record_span(sim::Time ts, sim::Time dur, EventType type, int node,
                   int rail, int conn, std::uint64_t a = 0,
                   std::uint64_t b = 0, SpanContext ctx = {},
                   std::uint64_t parent_span = 0) {
    Event e;
    e.ts = ts;
    e.dur = dur;
    e.type = type;
    e.node = static_cast<std::int16_t>(node);
    e.rail = static_cast<std::int16_t>(rail);
    e.conn = conn;
    e.a = a;
    e.b = b;
    e.trace_id = ctx.trace_id;
    e.span_id = ctx.span_id;
    e.parent_span = parent_span;
    record(e);
  }

  /// Allocate a fresh trace id / span id. Monotonic counters on the single
  /// cluster-wide recorder; the simulation is single-threaded, so allocation
  /// order — and therefore every id — is deterministic per seed. Trace ids
  /// start at 1 (0 = untraced).
  std::uint64_t new_trace_id() { return ++next_trace_id_; }
  std::uint64_t new_span_id() { return ++next_span_id_; }

  /// New root context for one distributed operation.
  SpanContext new_root() { return SpanContext{new_trace_id(), new_span_id()}; }
  /// New child span inside an existing trace.
  SpanContext new_child(const SpanContext& parent) {
    return SpanContext{parent.trace_id, new_span_id()};
  }

  /// Events in recording order (oldest surviving event first).
  std::vector<Event> events() const;

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Total events ever recorded, including ones overwritten by wraparound.
  std::uint64_t total_recorded() const { return total_; }
  bool wrapped() const { return total_ > size_; }
  void clear() {
    head_ = 0;
    size_ = 0;
    total_ = 0;
  }

 private:
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // next slot to write
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t next_trace_id_ = 0;
  std::uint64_t next_span_id_ = 0;
};

/// RAII fiber-local span scope: operations submitted by this fiber while the
/// scope is alive inherit `ctx` as their parent (the protocol layer snapshots
/// sim::Process::current()->span_slot at submit time). Context lives on the
/// PROCESS, not the engine, because a fiber can yield mid-operation (compute
/// charges) and a concurrently running fiber must not inherit its span.
/// Scopes nest; destruction restores the previous context.
class SpanScope {
 public:
  explicit SpanScope(const SpanContext& ctx) : proc_(sim::Process::current()) {
    if (proc_ == nullptr) return;
    prev_ = proc_->span_slot;
    proc_->span_slot.trace_id = ctx.trace_id;
    proc_->span_slot.span_id = ctx.span_id;
  }
  ~SpanScope() {
    if (proc_ != nullptr) proc_->span_slot = prev_;
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// The current fiber's span context ({0,0} outside any scope/fiber).
  static SpanContext current() {
    sim::Process* p = sim::Process::current();
    if (p == nullptr) return {};
    return SpanContext{p->span_slot.trace_id, p->span_slot.span_id};
  }

 private:
  sim::Process* proc_;
  sim::Process::SpanSlot prev_{};
};

}  // namespace multiedge::trace
