// Protocol-wide event tracing.
//
// A TraceRecorder is a fixed-capacity ring buffer of typed events keyed on
// simulated time. Every layer of the stack (NIC, wire, protocol engine,
// connection, DSM) holds a nullable TraceRecorder* and records through it;
// when tracing is disabled the Cluster never constructs a recorder, so the
// per-hook cost is a single null-pointer branch and zero allocation.
//
// Recording never consumes simulated time or perturbs the event queue: the
// trace is a pure observer, so enabling it cannot change protocol behaviour
// or any measured (simulated) latency/throughput number.
//
// Events carry dense identifiers (node, rail, connection, sequence) rather
// than strings; the Chrome-trace exporter (trace/export.hpp) turns them into
// per-node×rail and per-connection tracks loadable in Perfetto.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace multiedge::trace {

enum class EventType : std::uint8_t {
  // NIC layer (below the protocol header, so no seq here).
  kNicTx,        // frame handed to the wire; a=payload bytes, b=wire bytes
  kNicRx,        // frame DMA'd into the rx ring; a=payload bytes, b=wire bytes
  kIrq,          // interrupt fired; b=events coalesced into this IRQ
  // Wire (channel fault model).
  kWireDrop,     // frame lost on the wire; a=payload bytes
  kWireCorrupt,  // frame FCS-corrupted on the wire; a=payload bytes
  // Protocol engine.
  kThreadBatch,  // protocol-thread pass; a=completions reaped, b=frames in batch
  // Connection.
  kDataTx,       // DATA frame (re)transmitted; a=seq, b=payload bytes
  kDataRx,       // DATA frame accepted; a=seq, b=payload bytes
  kAckTx,        // explicit ACK sent; a=cumulative ack
  kAckRx,        // ACK processed; a=cumulative ack, b=nack count
  kRetransmit,   // frame retransmitted; a=seq
  kWindowStall,  // sender blocked on the sliding window; a=snd_una
  kWindowResume, // window reopened; a=snd_una
  kFenceBlocked, // op held back by a fence; a=op id
  kFenceRelease, // fence released blocked ops; a=ops released
  kOpSubmit,     // user op submitted; a=op id, b=bytes
  kOpComplete,   // user op completed (duration event); a=op id, b=bytes
  // DSM.
  kDsmPageFetch, // remote page fetch (duration event); a=page, b=bytes
  kDsmDiffFlush, // dirty-diff writeback (duration event); a=pages, b=bytes
  // Collectives (src/coll).
  kCollOp,       // one collective op (duration event); a=(kind<<8)|algo, b=bytes
  kCollRound,    // one round/step within a collective; a=round, b=bytes
};

/// Stable short name for an event type ("nic_tx", "op_complete", ...).
std::string_view event_name(EventType t);

/// Perfetto category for an event type ("nic", "wire", "engine", "conn",
/// "dsm") — used as the Chrome-trace "cat" field.
std::string_view event_category(EventType t);

/// One trace record. 48 bytes; identifiers are dense ints, never strings.
struct Event {
  sim::Time ts = 0;    ///< event time (ps); start time for duration events
  sim::Time dur = 0;   ///< duration (ps) for kOpComplete/kDsm* span events
  std::uint64_t a = 0; ///< primary payload (seq, op id, page, ...)
  std::uint64_t b = 0; ///< secondary payload (bytes, batch size, ...)
  std::int32_t conn = -1;  ///< connection local id, -1 if n/a
  std::int16_t node = -1;  ///< node id, -1 if n/a
  std::int16_t rail = -1;  ///< rail id, -1 if n/a
  EventType type = EventType::kNicTx;
};

struct TraceConfig {
  bool enabled = false;
  /// Ring capacity in events; oldest events are overwritten on overflow.
  std::size_t ring_capacity = 1 << 18;
  /// Cadence of the periodic time-series samplers (window occupancy,
  /// queue depth, outstanding ops). 0 disables sampling.
  sim::Time sample_interval = 10'000'000;  // 10 us
};

/// Fixed-capacity ring buffer of events. The buffer is allocated once at
/// construction; record() never allocates.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity) : ring_(capacity) {}

  void record(Event e) {
    if (ring_.empty()) return;
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
    ++total_;
  }

  /// Convenience for instant events.
  void record(sim::Time ts, EventType type, int node, int rail, int conn,
              std::uint64_t a = 0, std::uint64_t b = 0) {
    Event e;
    e.ts = ts;
    e.type = type;
    e.node = static_cast<std::int16_t>(node);
    e.rail = static_cast<std::int16_t>(rail);
    e.conn = conn;
    e.a = a;
    e.b = b;
    record(e);
  }

  /// Convenience for duration events (ts = start, dur = length).
  void record_span(sim::Time ts, sim::Time dur, EventType type, int node,
                   int rail, int conn, std::uint64_t a = 0,
                   std::uint64_t b = 0) {
    Event e;
    e.ts = ts;
    e.dur = dur;
    e.type = type;
    e.node = static_cast<std::int16_t>(node);
    e.rail = static_cast<std::int16_t>(rail);
    e.conn = conn;
    e.a = a;
    e.b = b;
    record(e);
  }

  /// Events in recording order (oldest surviving event first).
  std::vector<Event> events() const;

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Total events ever recorded, including ones overwritten by wraparound.
  std::uint64_t total_recorded() const { return total_; }
  bool wrapped() const { return total_ > size_; }
  void clear() {
    head_ = 0;
    size_ = 0;
    total_ = 0;
  }

 private:
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // next slot to write
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace multiedge::trace
