#include "trace/histogram.hpp"

#include <bit>

namespace multiedge::trace {

namespace {
constexpr int kSubBucketBits = 4;  // 16 linear sub-buckets per power of two
constexpr std::uint64_t kSubBuckets = 1u << kSubBucketBits;
}  // namespace

std::size_t LatencyHistogram::bucket_index(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int group = msb - kSubBucketBits + 1;
  const std::uint64_t offset = (v >> (msb - kSubBucketBits)) & (kSubBuckets - 1);
  return static_cast<std::size_t>(group) * kSubBuckets +
         static_cast<std::size_t>(offset);
}

std::uint64_t LatencyHistogram::bucket_floor(std::size_t idx) {
  if (idx < kSubBuckets) return idx;
  const std::size_t group = idx / kSubBuckets;
  const std::uint64_t offset = idx % kSubBuckets;
  return (kSubBuckets + offset) << (group - 1);
}

void LatencyHistogram::record(std::uint64_t v) {
  const std::size_t idx = bucket_index(v);
  if (buckets_.size() <= idx) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  ++count_;
  sum_ += v;
  if (count_ == 1 || v < min_) min_ = v;
  if (v > max_) max_ = v;
}

std::uint64_t LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      const std::uint64_t v = bucket_floor(i);
      if (v < min_) return min_;
      if (v > max_) return max_;
      return v;
    }
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.size() < other.buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::clear() {
  buckets_.clear();
  count_ = sum_ = min_ = max_ = 0;
}

}  // namespace multiedge::trace
