// Periodic time-series samplers.
//
// A TimeSeries is a named sequence of (sim-time, value) samples. The Cluster
// registers samplers (window occupancy, per-rail queue depth, outstanding
// ops) and drives them from one periodic sim::Timer; sampling reads state but
// charges no simulated cost, so it cannot perturb the run.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace multiedge::trace {

class TimeSeries {
 public:
  TimeSeries(std::string name, std::size_t max_samples = 1 << 16)
      : name_(std::move(name)), max_samples_(max_samples) {}

  void sample(sim::Time t, double v) {
    if (samples_.size() >= max_samples_) return;  // cap, keep earliest window
    samples_.emplace_back(t, v);
  }

  const std::string& name() const { return name_; }
  const std::vector<std::pair<sim::Time, double>>& samples() const {
    return samples_;
  }
  bool truncated() const { return samples_.size() >= max_samples_; }
  void clear() { samples_.clear(); }

 private:
  std::string name_;
  std::size_t max_samples_;
  std::vector<std::pair<sim::Time, double>> samples_;
};

}  // namespace multiedge::trace
