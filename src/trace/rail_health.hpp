// Per-rail health telemetry.
//
// One RailHealth aggregator per (node, rail) egress direction, fed from the
// layers that already observe the relevant signals: the channel fault model
// reports wire drops, Gilbert-Elliott burst-loss marks and outage flaps as
// they happen, and the protocol connection reports retransmissions against
// the rail that carries them. Feeding is a pure observer — a few integer
// adds plus an exponential-decay fold, no simulated time, no allocation —
// so the aggregators are ALWAYS on (no config gate) and cannot perturb the
// protocol or any fingerprinted counter set.
//
// Rates are irregular-sample EWMAs: instead of a periodic fold timer (which
// would add simulator events), each feed decays the accumulated rate by
// exp(-dt/tau) since the previous feed. snapshot() folds up to "now" so two
// snapshots at the same sim time agree regardless of feed history.
//
// Cluster aggregates every node's snapshots into a cluster-health JSON
// (Cluster::write_cluster_health) — the substrate the congestion-aware
// multipath work consumes (ROADMAP) — and the flight recorder embeds the
// same snapshots in postmortem dumps.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace multiedge::trace {

class RailHealth {
 public:
  /// Decay time constant of the rate EWMAs.
  static constexpr sim::Time kTau = sim::Time{1'000'000'000};  // 1 ms

  // --- feed points (hot path: integer math only) ---
  void on_frame_sent(sim::Time now, std::uint64_t wire_bytes) {
    fold(now);
    ++frames_sent_;
    bytes_sent_ += wire_bytes;
    send_rate_ += 1.0;
  }
  void on_drop(sim::Time now, bool burst) {
    fold(now);
    ++drops_;
    if (burst) ++burst_drops_;
    loss_rate_ += 1.0;
  }
  void on_corrupt(sim::Time now) {
    fold(now);
    ++corrupts_;
    loss_rate_ += 1.0;  // an FCS-bad frame is lost to the protocol
  }
  void on_burst_transition(sim::Time now, bool now_bad) {
    fold(now);
    ++burst_transitions_;
    in_burst_ = now_bad;
  }
  void on_outage_change(sim::Time now, bool now_out) {
    fold(now);
    if (now_out != in_outage_) {
      ++outage_flaps_;
      in_outage_ = now_out;
    }
  }
  void on_retransmit(sim::Time now) {
    fold(now);
    ++retransmits_;
    retransmit_rate_ += 1.0;
  }
  /// Queue depth is sampled (not event-fed): callers pass the NIC's current
  /// tx ring occupancy whenever they have it in hand.
  void on_queue_sample(sim::Time now, std::uint64_t tx_queue,
                       std::uint64_t rx_queue) {
    fold(now);
    const double alpha = 0.25;  // simple fixed-gain smoothing for depth
    tx_queue_ewma_ += alpha * (static_cast<double>(tx_queue) - tx_queue_ewma_);
    rx_queue_ewma_ += alpha * (static_cast<double>(rx_queue) - rx_queue_ewma_);
    last_tx_queue_ = tx_queue;
    last_rx_queue_ = rx_queue;
  }

  /// Point-in-time view. Rates are events per millisecond (tau-normalized).
  struct Snapshot {
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t drops = 0;
    std::uint64_t burst_drops = 0;
    std::uint64_t corrupts = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t burst_transitions = 0;
    std::uint64_t outage_flaps = 0;
    double send_rate = 0;        // frames/ms, EWMA
    double loss_rate = 0;        // drops+corrupts/ms, EWMA
    double retransmit_rate = 0;  // retransmits/ms, EWMA
    double tx_queue_ewma = 0;
    double rx_queue_ewma = 0;
    std::uint64_t tx_queue = 0;  // most recent raw sample
    std::uint64_t rx_queue = 0;
    bool in_burst = false;
    bool in_outage = false;
    /// 0 (healthy) .. 1 (unusable): the scalar a stripe scheduler can rank
    /// rails by. Loss and retransmit pressure dominate; an active outage
    /// pins it to 1.
    double score() const;
  };
  Snapshot snapshot(sim::Time now) const;

  /// One JSON object (single line) for cluster-health / postmortem dumps.
  static std::string to_json(const Snapshot& s);

 private:
  void fold(sim::Time now) const;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t burst_drops_ = 0;
  std::uint64_t corrupts_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t burst_transitions_ = 0;
  std::uint64_t outage_flaps_ = 0;
  std::uint64_t last_tx_queue_ = 0;
  std::uint64_t last_rx_queue_ = 0;
  bool in_burst_ = false;
  bool in_outage_ = false;
  // Decayed-rate state (mutable: fold() is logically const bookkeeping).
  mutable double send_rate_ = 0;
  mutable double loss_rate_ = 0;
  mutable double retransmit_rate_ = 0;
  mutable double tx_queue_ewma_ = 0;
  mutable double rx_queue_ewma_ = 0;
  mutable sim::Time last_fold_ = 0;
};

}  // namespace multiedge::trace
