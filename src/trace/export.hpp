// Exporters for trace artifacts.
//
// write_chrome_trace() emits the Chrome trace-event JSON format (the
// {"traceEvents": [...]} flavour), loadable directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Track layout:
//   pid  = node id (one "process" per node)
//   tid 0            = protocol thread (batch boundaries)
//   tid 1 + rail     = NIC/wire/data track for that rail
//   tid 500          = DSM activity
//   tid 501          = collectives
//   tid 502          = key-value store spans
//   tid 503          = membership probe spans
//   tid 1000 + conn  = per-connection op/window/fence track
// Instant events use ph "i", duration events (see trace::is_span) use ph "X"
// with ts = start. Events carrying a causal trace context additionally emit
// "trace"/"span"/"parent" args plus a Perfetto flow arrow (ph "s"/"f") from
// the parent span's slice, so one distributed op renders as a stitched
// cross-node timeline. Timestamps are microseconds of simulated time
// (fractional; the sim runs in picoseconds).
//
// The *_to_json helpers emit the machine-readable metrics objects embedded in
// the bench BENCH_*.json artifacts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/histogram.hpp"
#include "trace/timeseries.hpp"
#include "trace/trace.hpp"

namespace multiedge::trace {

/// Write the full Chrome trace-event document. `series` entries (may be
/// empty) are emitted as Perfetto counter tracks (ph "C").
void write_chrome_trace(std::ostream& os, const TraceRecorder& rec,
                        const std::vector<const TimeSeries*>& series = {});

/// Same, into a string (used by tests and small tools).
std::string chrome_trace_string(const TraceRecorder& rec,
                                const std::vector<const TimeSeries*>& series = {});

/// {"count":N,"min":..,"mean":..,"p50":..,"p95":..,"p99":..,"max":..}
void histogram_to_json(std::ostream& os, const LatencyHistogram& h);

/// {"name":"..","samples":[[t_us,v],...]}
void timeseries_to_json(std::ostream& os, const TimeSeries& s);

}  // namespace multiedge::trace
