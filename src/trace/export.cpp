#include "trace/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "stats/json.hpp"

namespace multiedge::trace {

namespace {

constexpr int kTidProtoThread = 0;
constexpr int kTidRailBase = 1;
constexpr int kTidDsm = 500;
constexpr int kTidColl = 501;
constexpr int kTidKv = 502;
constexpr int kTidMember = 503;
constexpr int kTidSvc = 504;
constexpr int kTidRma = 505;
constexpr int kTidConnBase = 1000;

// Simulated picoseconds -> trace microseconds, printed with fixed precision
// so equal inputs always serialize identically.
std::string ts_us(sim::Time ps) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6f", static_cast<double>(ps) / 1e6);
  return buf;
}

int event_tid(const Event& e) {
  switch (e.type) {
    case EventType::kThreadBatch:
      return kTidProtoThread;
    case EventType::kNicTx:
    case EventType::kNicRx:
    case EventType::kIrq:
    case EventType::kWireDrop:
    case EventType::kWireCorrupt:
    case EventType::kDataTx:
    case EventType::kDataRx:
    case EventType::kRetransmit:
      return kTidRailBase + (e.rail >= 0 ? e.rail : 0);
    case EventType::kDsmPageFetch:
    case EventType::kDsmDiffFlush:
      return kTidDsm;
    case EventType::kCollOp:
    case EventType::kCollRound:
      return kTidColl;
    case EventType::kKvOp:
    case EventType::kKvHandler:
    case EventType::kKvRepl:
      return kTidKv;
    case EventType::kMemberProbe:
      return kTidMember;
    case EventType::kSvcOp:
      return kTidSvc;
    case EventType::kRmaOp:
    case EventType::kRmaSubmit:
      return kTidRma;
    case EventType::kAckTx:
    case EventType::kAckRx:
    case EventType::kWindowStall:
    case EventType::kWindowResume:
    case EventType::kFenceBlocked:
    case EventType::kFenceRelease:
    case EventType::kOpSubmit:
    case EventType::kOpComplete:
    case EventType::kDoorbell:
    case EventType::kOpRecv:
      return kTidConnBase + (e.conn >= 0 ? e.conn : 0);
  }
  return 0;
}

// Span-ness comes from the single trace.hpp table (trace::is_span); the
// exporter deliberately has no private copy to drift out of sync.

std::string thread_label(int tid) {
  if (tid == kTidProtoThread) return "proto-thread";
  if (tid == kTidDsm) return "dsm";
  if (tid == kTidColl) return "coll";
  if (tid == kTidKv) return "kv";
  if (tid == kTidMember) return "member";
  if (tid == kTidSvc) return "svc";
  if (tid == kTidRma) return "rma";
  if (tid >= kTidConnBase) return "conn" + std::to_string(tid - kTidConnBase);
  return "rail" + std::to_string(tid - kTidRailBase);
}

void write_meta(std::ostream& os, bool& first, const char* name, int pid,
                int tid, const std::string& value) {
  os << (first ? "" : ",") << "\n  {\"ph\":\"M\",\"name\":\"" << name
     << "\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"args\":{\"name\":\"" << stats::json::escape(value) << "\"}}";
  first = false;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceRecorder& rec,
                        const std::vector<const TimeSeries*>& series) {
  const std::vector<Event> events = rec.events();

  // Collect the (pid, tid) tracks present so each gets a stable name.
  std::set<int> pids;
  std::set<std::pair<int, int>> tracks;
  for (const Event& e : events) {
    const int pid = e.node >= 0 ? e.node : 0;
    pids.insert(pid);
    tracks.insert({pid, event_tid(e)});
  }

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const int pid : pids) {
    write_meta(os, first, "process_name", pid, 0,
               "node" + std::to_string(pid));
  }
  for (const auto& [pid, tid] : tracks) {
    write_meta(os, first, "thread_name", pid, tid, thread_label(tid));
  }

  // Track where every traced span lives so cross-node parent links can be
  // drawn as Perfetto flow arrows (span id -> its slice's pid/tid/start).
  // Instants carrying a span id (op_submit) register too: they anchor ops
  // whose completion span never landed (fire-and-forget writes drained with
  // the run); a later span event for the same id overrides the anchor.
  struct SpanSite {
    int pid = 0;
    int tid = 0;
    sim::Time ts = 0;
  };
  std::map<std::uint64_t, SpanSite> span_sites;
  for (const Event& e : events) {
    if (e.trace_id != 0 && e.span_id != 0) {
      span_sites[e.span_id] = SpanSite{e.node >= 0 ? e.node : 0, event_tid(e),
                                       e.ts};
    }
  }

  for (const Event& e : events) {
    const int pid = e.node >= 0 ? e.node : 0;
    os << (first ? "" : ",") << "\n  {\"name\":\"" << event_name(e.type)
       << "\",\"cat\":\"" << event_category(e.type) << "\",\"ph\":\""
       << (is_span(e.type) ? 'X' : 'i') << "\",\"ts\":" << ts_us(e.ts);
    if (is_span(e.type)) {
      os << ",\"dur\":" << ts_us(e.dur);
    } else {
      os << ",\"s\":\"t\"";
    }
    os << ",\"pid\":" << pid << ",\"tid\":" << event_tid(e)
       << ",\"args\":{\"a\":" << e.a << ",\"b\":" << e.b;
    if (e.conn >= 0) os << ",\"conn\":" << e.conn;
    if (e.rail >= 0) os << ",\"rail\":" << e.rail;
    if (e.trace_id != 0) {
      // Causal context: only traced events grow args, so untraced runs
      // export byte-identically to the pre-context format.
      os << ",\"trace\":" << e.trace_id << ",\"span\":" << e.span_id
         << ",\"parent\":" << e.parent_span;
    }
    os << "}}";
    first = false;

    // Parent -> child flow arrow (one per traced child span whose parent's
    // slice survived the ring). The flow id is the child's span id: unique,
    // deterministic, and shared by exactly the "s"/"f" pair.
    if (e.trace_id != 0 && is_span(e.type) && e.parent_span != 0) {
      auto it = span_sites.find(e.parent_span);
      if (it != span_sites.end()) {
        const SpanSite& p = it->second;
        os << ",\n  {\"name\":\"" << event_name(e.type)
           << "\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" << e.span_id
           << ",\"ts\":" << ts_us(p.ts) << ",\"pid\":" << p.pid
           << ",\"tid\":" << p.tid << "}";
        os << ",\n  {\"name\":\"" << event_name(e.type)
           << "\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":"
           << e.span_id << ",\"ts\":" << ts_us(e.ts) << ",\"pid\":" << pid
           << ",\"tid\":" << event_tid(e) << "}";
      }
    }
  }

  for (const TimeSeries* s : series) {
    if (!s) continue;
    for (const auto& [t, v] : s->samples()) {
      os << (first ? "" : ",") << "\n  {\"ph\":\"C\",\"name\":\""
         << stats::json::escape(s->name()) << "\",\"pid\":0,\"tid\":0,\"ts\":"
         << ts_us(t) << ",\"args\":{\"value\":" << stats::json::number(v)
         << "}}";
      first = false;
    }
  }

  os << "\n]}\n";
}

std::string chrome_trace_string(const TraceRecorder& rec,
                                const std::vector<const TimeSeries*>& series) {
  std::ostringstream os;
  write_chrome_trace(os, rec, series);
  return os.str();
}

void histogram_to_json(std::ostream& os, const LatencyHistogram& h) {
  os << "{\"count\":" << h.count() << ",\"min\":" << h.min()
     << ",\"mean\":" << stats::json::number(h.mean())
     << ",\"p50\":" << h.p50() << ",\"p95\":" << h.p95()
     << ",\"p99\":" << h.p99() << ",\"max\":" << h.max() << "}";
}

void timeseries_to_json(std::ostream& os, const TimeSeries& s) {
  os << "{\"name\":\"" << stats::json::escape(s.name())
     << "\",\"samples\":[";
  bool first = true;
  for (const auto& [t, v] : s.samples()) {
    os << (first ? "" : ",") << "[" << ts_us(t) << ","
       << stats::json::number(v) << "]";
    first = false;
  }
  os << "]}";
}

}  // namespace multiedge::trace
