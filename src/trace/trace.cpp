#include "trace/trace.hpp"

namespace multiedge::trace {

std::string_view event_name(EventType t) {
  switch (t) {
    case EventType::kNicTx: return "nic_tx";
    case EventType::kNicRx: return "nic_rx";
    case EventType::kIrq: return "irq";
    case EventType::kWireDrop: return "wire_drop";
    case EventType::kWireCorrupt: return "wire_corrupt";
    case EventType::kThreadBatch: return "thread_batch";
    case EventType::kDataTx: return "data_tx";
    case EventType::kDataRx: return "data_rx";
    case EventType::kAckTx: return "ack_tx";
    case EventType::kAckRx: return "ack_rx";
    case EventType::kRetransmit: return "retransmit";
    case EventType::kWindowStall: return "window_stall";
    case EventType::kWindowResume: return "window_resume";
    case EventType::kFenceBlocked: return "fence_blocked";
    case EventType::kFenceRelease: return "fence_release";
    case EventType::kOpSubmit: return "op_submit";
    case EventType::kOpComplete: return "op_complete";
    case EventType::kDoorbell: return "doorbell";
    case EventType::kDsmPageFetch: return "dsm_page_fetch";
    case EventType::kDsmDiffFlush: return "dsm_diff_flush";
    case EventType::kCollOp: return "coll_op";
    case EventType::kCollRound: return "coll_round";
    case EventType::kOpRecv: return "op_recv";
    case EventType::kKvOp: return "kv_op";
    case EventType::kKvHandler: return "kv_handler";
    case EventType::kKvRepl: return "kv_repl";
    case EventType::kMemberProbe: return "member_probe";
    case EventType::kSvcOp: return "svc_op";
    case EventType::kRmaOp: return "rma_op";
    case EventType::kRmaSubmit: return "rma_submit";
  }
  return "unknown";
}

std::string_view event_category(EventType t) {
  switch (t) {
    case EventType::kNicTx:
    case EventType::kNicRx:
    case EventType::kIrq:
      return "nic";
    case EventType::kWireDrop:
    case EventType::kWireCorrupt:
      return "wire";
    case EventType::kThreadBatch:
      return "engine";
    case EventType::kDataTx:
    case EventType::kDataRx:
    case EventType::kAckTx:
    case EventType::kAckRx:
    case EventType::kRetransmit:
    case EventType::kWindowStall:
    case EventType::kWindowResume:
    case EventType::kFenceBlocked:
    case EventType::kFenceRelease:
    case EventType::kOpSubmit:
    case EventType::kOpComplete:
    case EventType::kDoorbell:
    case EventType::kOpRecv:
      return "conn";
    case EventType::kDsmPageFetch:
    case EventType::kDsmDiffFlush:
      return "dsm";
    case EventType::kCollOp:
    case EventType::kCollRound:
      return "coll";
    case EventType::kKvOp:
    case EventType::kKvHandler:
    case EventType::kKvRepl:
      return "kv";
    case EventType::kMemberProbe:
      return "member";
    case EventType::kSvcOp:
      return "svc";
    case EventType::kRmaOp:
    case EventType::kRmaSubmit:
      return "rma";
  }
  return "unknown";
}

std::vector<Event> TraceRecorder::events() const {
  std::vector<Event> out;
  out.reserve(size_);
  const std::size_t start =
      size_ < ring_.size() ? 0 : head_;  // oldest surviving event
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

}  // namespace multiedge::trace
