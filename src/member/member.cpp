#include "member/member.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "proto/wire.hpp"
#include "sim/process.hpp"

namespace multiedge::member {

namespace {

// Interned counter handles: one registry lookup at startup, plain vector
// adds on the data path.
const stats::CounterId kCtrMsgsUnroutable =
    stats::CounterRegistry::intern("member_msgs_unroutable");
const stats::CounterId kCtrMsgsSent =
    stats::CounterRegistry::intern("member_msgs_sent");
const stats::CounterId kCtrMsgsRx =
    stats::CounterRegistry::intern("member_msgs_rx");
const stats::CounterId kCtrAcksSent =
    stats::CounterRegistry::intern("member_acks_sent");
const stats::CounterId kCtrRelayPings =
    stats::CounterRegistry::intern("member_relay_pings");
const stats::CounterId kCtrProbeMsgs =
    stats::CounterRegistry::intern("member_probe_msgs");
const stats::CounterId kCtrIndirectRescues =
    stats::CounterRegistry::intern("member_indirect_rescues");
const stats::CounterId kCtrMsgsBadType =
    stats::CounterRegistry::intern("member_msgs_bad_type");
const stats::CounterId kCtrSuspicionsCleared =
    stats::CounterRegistry::intern("member_suspicions_cleared");
const stats::CounterId kCtrRefutes =
    stats::CounterRegistry::intern("member_refutes");
const stats::CounterId kCtrSelfDeclaredDead =
    stats::CounterRegistry::intern("member_self_declared_dead");
const stats::CounterId kCtrSuspects =
    stats::CounterRegistry::intern("member_suspects");
const stats::CounterId kCtrDeadMarks =
    stats::CounterRegistry::intern("member_dead_marks");
const stats::CounterId kCtrEagerGossip =
    stats::CounterRegistry::intern("member_eager_gossip");
const stats::CounterId kCtrProbesSuppressed =
    stats::CounterRegistry::intern("member_probes_suppressed");
const stats::CounterId kCtrPingsSent =
    stats::CounterRegistry::intern("member_pings_sent");
const stats::CounterId kCtrPingReqsSent =
    stats::CounterRegistry::intern("member_ping_reqs_sent");

constexpr std::uint64_t align64(std::uint64_t v) { return (v + 63) & ~63ull; }

int ceil_log2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

// Message types carried in MsgHeader::type.
constexpr std::uint8_t kPing = 0;
constexpr std::uint8_t kAck = 1;
constexpr std::uint8_t kPingReq = 2;
constexpr std::uint8_t kGossip = 3;  // updates only, no reply expected

/// Wire layout of a membership message; UpdateEntry records follow.
struct MsgHeader {
  std::uint8_t type;
  std::uint8_t num_updates;
  std::uint16_t src;     // sender
  std::uint16_t target;  // kPing/kPingReq: node being probed; kAck: acker
  std::uint16_t origin;  // node the ack must go to (the probing node)
  std::uint64_t seq;     // probe sequence, echoed by the ack
};
static_assert(sizeof(MsgHeader) == 16);

struct UpdateEntry {
  std::uint32_t node;
  std::uint32_t state;  // PeerState
  std::uint64_t incarnation;
};
static_assert(sizeof(UpdateEntry) == 16);

/// Sleep without occupying the app core (same rationale as the KV layer:
/// a blocked fiber burns no CPU; a compute() poll loop would starve the
/// node's real work).
void idle_wait(sim::Time t) { sim::Process::current()->delay(t); }

/// Close out one probe round's span (kMemberProbe): a = probed peer,
/// b = 1 when the round ended with an ack, 0 when it matured into suspicion.
void record_probe_span(trace::TraceRecorder* tr, sim::Time now, int self,
                       sim::Time started, const trace::SpanContext& ctx,
                       int target, bool acked) {
  if (tr == nullptr || !ctx.active()) return;
  tr->record_span(started, now - started, trace::EventType::kMemberProbe, self,
                  -1, -1, static_cast<std::uint64_t>(target), acked ? 1 : 0,
                  ctx);
}

}  // namespace

const char* state_str(PeerState s) {
  switch (s) {
    case PeerState::kAlive: return "alive";
    case PeerState::kSuspect: return "suspect";
    case PeerState::kDead: return "dead";
  }
  return "?";
}

sim::Time detection_bound(const MemberConfig& cfg, int n) {
  if (cfg.mesh) return cfg.period + cfg.mesh_timeout + cfg.period;
  // Detection: with ~n-1 independent shuffled probers, some live node probes
  // the dead peer within a handful of periods w.h.p.; the suspicion then
  // needs ping + indirect timeouts to form and suspect_timeout to mature.
  // Dissemination: piggybacked gossip is epidemic — O(log n) periods. The
  // constants are deliberately loose; this is a ceiling for tests.
  const int rounds = 10 + 3 * ceil_log2(std::max(2, n));
  return cfg.period * rounds + cfg.ping_timeout + cfg.indirect_timeout +
         cfg.suspect_timeout;
}

// ---------------------------------------------------------------------------
// Construction / symmetric domain
// ---------------------------------------------------------------------------

Service::Service(Cluster& cluster, MemberConfig cfg)
    : cluster_(cluster), cfg_(cfg), num_nodes_(cluster.num_nodes()) {
  if (cfg_.max_updates < 1) throw std::invalid_argument("member: max_updates");
  gossip_budget_ = cfg_.retransmit_factor * (ceil_log2(num_nodes_) + 1);
  msg_stride_ = static_cast<std::uint32_t>(align64(
      sizeof(MsgHeader) +
      static_cast<std::uint64_t>(cfg_.max_updates) * sizeof(UpdateEntry)));

  const std::uint64_t N = num_nodes_;
  // Same regions, same order, on every node (the symmetric-VA invariant all
  // MultiEdge mailbox schemes rely on).
  for (int i = 0; i < num_nodes_; ++i) {
    proto::MemorySpace& mem = cluster_.memory(i);
    const std::uint64_t inbox =
        mem.alloc(N * cfg_.inbox_slots * msg_stride_, 64);
    const std::uint64_t build = mem.alloc(msg_stride_, 64);
    const std::uint64_t hb = mem.alloc(N * 8, 64);
    const std::uint64_t hb_src = mem.alloc(8, 64);
    if (i == 0) {
      inbox_va_ = inbox;
      build_va_ = build;
      hb_va_ = hb;
      hb_src_va_ = hb_src;
    } else if (inbox != inbox_va_ || build != build_va_ || hb != hb_va_ ||
               hb_src != hb_src_va_) {
      throw std::runtime_error(
          "member: asymmetric allocation (nodes must allocate in the same "
          "order before constructing the service)");
    }
  }

  nodes_.reserve(num_nodes_);
  for (int i = 0; i < num_nodes_; ++i) {
    auto ctx = std::make_unique<NodeCtx>(
        i, num_nodes_, cfg_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    ctx->conns.assign(num_nodes_, nullptr);
    ctx->connect_started.assign(num_nodes_, 0);
    ctx->next_inbox_slot.assign(num_nodes_, 0);
    ctx->suspect_since.assign(num_nodes_, 0);
    if (cfg_.mesh) {
      ctx->mesh_last_val.assign(num_nodes_, 0);
      ctx->mesh_last_change.assign(num_nodes_, 0);
    } else {
      // Shuffled round-robin probe schedule (SWIM §4.3): every peer is
      // probed within n-1 rounds, in an order uncorrelated across nodes.
      for (int p = 0; p < num_nodes_; ++p) {
        if (p != i) ctx->probe_order.push_back(p);
      }
      for (std::size_t k = ctx->probe_order.size(); k > 1; --k) {
        std::swap(ctx->probe_order[k - 1],
                  ctx->probe_order[ctx->rng.next_below(k)]);
      }
    }
    nodes_.push_back(std::move(ctx));
  }
  for (int i = 0; i < num_nodes_; ++i) {
    cluster_.spawn(i, "member-" + std::to_string(i), [this](Endpoint& ep) {
      if (cfg_.mesh) {
        mesh_fiber(ep);
      } else {
        fiber(ep);
      }
    });
  }

  // Postmortem section: every node's membership view at dump time, one
  // compact string per node ('.' self, 'a' alive, 's' suspect, 'd' dead).
  cluster_.add_postmortem_provider("membership", [this] {
    std::ostringstream os;
    os << "{\"nodes\": [";
    for (int i = 0; i < num_nodes_; ++i) {
      const View& v = nodes_[i]->view;
      os << (i ? "," : "") << "\n    {\"node\": " << i
         << ", \"num_down\": " << v.num_down() << ", \"view\": \"";
      for (int p = 0; p < num_nodes_; ++p) {
        if (p == i) {
          os << '.';
        } else {
          switch (v.state(p)) {
            case PeerState::kAlive: os << 'a'; break;
            case PeerState::kSuspect: os << 's'; break;
            case PeerState::kDead: os << 'd'; break;
          }
        }
      }
      os << "\"}";
    }
    os << "\n  ]}";
    return os.str();
  });
}

stats::Counters Service::aggregate_counters() const {
  stats::Counters all;
  for (const auto& ctx : nodes_) all.merge(ctx->counters);
  return all;
}

// ---------------------------------------------------------------------------
// Wire helpers
// ---------------------------------------------------------------------------

proto::Connection* Service::conn_or_null(NodeCtx& ctx, Endpoint& ep,
                                         int peer) {
  proto::Connection*& c = ctx.conns[peer];
  if (c && c->state() == proto::ConnState::kEstablished) return c;
  // Any established connection works; prefer one the peer already opened
  // toward us (the common case for acks: the ping arrived on it).
  if (proto::Connection* r = ep.engine().responder_for(peer)) return r;
  if (!c) {
    // Non-blocking connect: Endpoint::connect would park this fiber forever
    // on a crashed peer, which is exactly the case a failure detector must
    // survive. The engine keeps retrying SYNs; we just poll state().
    c = ep.engine().connect(peer);
    ctx.connect_started[peer] = cluster_.sim().now();
  }
  return c->state() == proto::ConnState::kEstablished ? c : nullptr;
}

void Service::send_msg(NodeCtx& ctx, Endpoint& ep, int dst, std::uint8_t type,
                       int target, int origin, std::uint64_t seq) {
  proto::Connection* pc = conn_or_null(ctx, ep, dst);
  if (!pc) {
    // Still handshaking (or the peer is gone). Probe logic treats the
    // missing ack like any other loss; gossip rides later messages.
    ctx.counters.add(kCtrMsgsUnroutable);
    return;
  }
  const int self = ctx.view.self();
  proto::MemorySpace& mem = ep.memory();
  auto* h = mem.as<MsgHeader>(build_va_);
  h->type = type;
  h->src = static_cast<std::uint16_t>(self);
  h->target = static_cast<std::uint16_t>(target);
  h->origin = static_cast<std::uint16_t>(origin);
  h->seq = seq;
  auto* entries = mem.as<UpdateEntry>(build_va_ + sizeof(MsgHeader));
  // Entry 0 is always the sender's own Alive(incarnation) — every message
  // doubles as a heartbeat and as the refutation carrier after an
  // incarnation bump.
  int m = 0;
  entries[m++] = UpdateEntry{static_cast<std::uint32_t>(self),
                             static_cast<std::uint32_t>(PeerState::kAlive),
                             ctx.view.incarnation(self)};
  if (!ctx.gossip.empty() && m < cfg_.max_updates) {
    // Piggyback the freshest updates (highest remaining send budget).
    std::vector<int> idx(ctx.gossip.size());
    std::iota(idx.begin(), idx.end(), 0);
    const std::size_t take = std::min<std::size_t>(
        idx.size(), static_cast<std::size_t>(cfg_.max_updates - m));
    std::partial_sort(idx.begin(), idx.begin() + take, idx.end(),
                      [&](int a, int b) {
                        return ctx.gossip[a].sends_left > ctx.gossip[b].sends_left;
                      });
    for (std::size_t k = 0; k < take; ++k) {
      GossipEntry& g = ctx.gossip[idx[k]];
      entries[m++] = UpdateEntry{
          static_cast<std::uint32_t>(g.node),
          static_cast<std::uint32_t>(ctx.view.state(g.node)),
          ctx.view.incarnation(g.node)};
      --g.sends_left;
    }
    ctx.gossip.erase(std::remove_if(ctx.gossip.begin(), ctx.gossip.end(),
                                    [](const GossipEntry& g) {
                                      return g.sends_left <= 0;
                                    }),
                     ctx.gossip.end());
  }
  h->num_updates = static_cast<std::uint8_t>(m);

  int& cursor = ctx.next_inbox_slot[dst];
  const int slot = cursor;
  cursor = (cursor + 1) % cfg_.inbox_slots;
  const auto bytes = static_cast<std::uint32_t>(sizeof(MsgHeader) +
                                                m * sizeof(UpdateEntry));
  // BackwardFence keeps one sender's messages applying in issue order, so
  // the receiver's per-source ring is consumed FIFO.
  Connection(&ep, pc).rdma_write(
      inbox_slot_va(self, slot), build_va_, bytes,
      kOpFlagNotify | kOpFlagUrgent | kOpFlagBackwardFence |
          op_tag_flags(cfg_.tag));
  ctx.counters.add(kCtrMsgsSent);
}

void Service::handle_msg(NodeCtx& ctx, Endpoint& ep, const Notification& n) {
  proto::MemorySpace& mem = ep.memory();
  // Copy the message out before doing anything that can yield (sends charge
  // CPU): the slot ring may be rewritten by the source meanwhile.
  MsgHeader h;
  std::memcpy(&h, mem.as<std::byte>(n.va), sizeof(h));
  std::array<UpdateEntry, 255> updates;
  const int m = std::min<int>(h.num_updates, cfg_.max_updates);
  std::memcpy(updates.data(), mem.as<std::byte>(n.va + sizeof(MsgHeader)),
              static_cast<std::size_t>(m) * sizeof(UpdateEntry));
  ctx.counters.add(kCtrMsgsRx);
  // Replies issued below (acks, relayed pings) stitch under the incoming
  // message's receive span, so a full ping-req round renders as one trace.
  const trace::SpanScope scope(n.ctx);

  const int src = h.src;
  // First-hand evidence beats gossip: a message FROM a peer proves it alive
  // regardless of incarnation bookkeeping.
  mark_peer_alive(ctx, src);
  for (int i = 0; i < m; ++i) {
    apply_update(ctx, static_cast<int>(updates[i].node),
                 static_cast<PeerState>(updates[i].state),
                 updates[i].incarnation);
  }

  switch (h.type) {
    case kPing:
      // Ack straight to the probing node (h.origin) — for an indirect probe
      // that skips the relay hop on the way back.
      send_msg(ctx, ep, h.origin, kAck, ctx.view.self(), h.origin, h.seq);
      ctx.counters.add(kCtrAcksSent);
      break;
    case kPingReq:
      // Probe h.target on behalf of h.origin; the target acks h.origin.
      send_msg(ctx, ep, h.target, kPing, h.target, h.origin, h.seq);
      ctx.counters.add(kCtrRelayPings);
      ctx.counters.add(kCtrProbeMsgs);
      break;
    case kAck:
      if (ctx.probe.target == src && h.seq == ctx.probe.seq) {
        record_probe_span(cluster_.tracer(), cluster_.sim().now(),
                          ctx.view.self(), ctx.probe.started, ctx.probe.ctx,
                          ctx.probe.target, /*acked=*/true);
        ctx.probe.target = -1;  // round succeeded
        if (ctx.probe.indirect) ctx.counters.add(kCtrIndirectRescues);
      }
      break;
    case kGossip:
      break;  // updates were applied above; nothing to answer
    default:
      ctx.counters.add(kCtrMsgsBadType);
      break;
  }
}

// ---------------------------------------------------------------------------
// SWIM state machine
// ---------------------------------------------------------------------------

void Service::transition(NodeCtx& ctx, int peer, PeerState st) {
  View& v = ctx.view;
  if (v.state_[peer] == st) return;
  v.state_[peer] = st;
  if (st == PeerState::kDead && !v.down_[peer]) {
    v.down_[peer] = true;
    ++v.num_down_;
  }
  const sim::Time now = cluster_.sim().now();
  for (const auto& fn : on_transition_) fn(v.self(), peer, st, now);
}

void Service::enqueue_gossip(NodeCtx& ctx, int node) {
  if (node == ctx.view.self()) return;  // entry 0 of every message is self
  for (GossipEntry& g : ctx.gossip) {
    if (g.node == node) {
      g.sends_left = gossip_budget_;  // refresh: state changed again
      return;
    }
  }
  ctx.gossip.push_back(GossipEntry{node, gossip_budget_});
}

void Service::mark_peer_alive(NodeCtx& ctx, int peer) {
  View& v = ctx.view;
  if (peer == v.self() || v.state_[peer] != PeerState::kSuspect) return;
  // Local clear only — no incarnation bump (that is the suspect's own
  // privilege); other views converge through the suspect's refutation.
  ctx.suspect_since[peer] = 0;
  --ctx.num_suspects;
  transition(ctx, peer, PeerState::kAlive);
  ctx.counters.add(kCtrSuspicionsCleared);
}

void Service::apply_update(NodeCtx& ctx, int node, PeerState st,
                           std::uint64_t inc) {
  View& v = ctx.view;
  const int self = v.self();
  if (node < 0 || node >= num_nodes_) return;
  if (node == self) {
    // Someone thinks we are suspect/dead. Refute suspicion by bumping our
    // incarnation; death cannot be refuted (sticky by design).
    if (st == PeerState::kSuspect && inc >= v.incarnation_[self]) {
      v.incarnation_[self] = inc + 1;
      ctx.counters.add(kCtrRefutes);
    } else if (st == PeerState::kDead) {
      ctx.counters.add(kCtrSelfDeclaredDead);
    }
    return;
  }
  const PeerState cur = v.state_[node];
  const std::uint64_t cur_inc = v.incarnation_[node];
  if (cur == PeerState::kDead) return;  // sticky for the session

  switch (st) {
    case PeerState::kAlive:
      if (inc > cur_inc) {
        v.incarnation_[node] = inc;
        if (cur == PeerState::kSuspect) {
          ctx.suspect_since[node] = 0;
          --ctx.num_suspects;
          transition(ctx, node, PeerState::kAlive);
          ctx.counters.add(kCtrSuspicionsCleared);
        }
        enqueue_gossip(ctx, node);  // relay the refutation
      }
      break;
    case PeerState::kSuspect:
      if (inc > cur_inc || (inc == cur_inc && cur == PeerState::kAlive)) {
        v.incarnation_[node] = inc;
        if (cur == PeerState::kAlive) {
          ctx.suspect_since[node] = cluster_.sim().now();
          ++ctx.num_suspects;
          transition(ctx, node, PeerState::kSuspect);
          ctx.counters.add(kCtrSuspects);
        }
        enqueue_gossip(ctx, node);
      }
      break;
    case PeerState::kDead:
      if (cur == PeerState::kSuspect) {
        ctx.suspect_since[node] = 0;
        --ctx.num_suspects;
      }
      transition(ctx, node, PeerState::kDead);
      ctx.counters.add(kCtrDeadMarks);
      enqueue_gossip(ctx, node);
      // A confirmed death is too important to wait out the next probe tick:
      // push it to indirect_k random live peers right away. Each recipient
      // that learns something new pushes again, so the confirmation spreads
      // in O(log n) network hops instead of O(log n) probe periods.
      if (ctx.ep) eager_disseminate(ctx, *ctx.ep);
      break;
  }
}

void Service::eager_disseminate(NodeCtx& ctx, Endpoint& ep) {
  std::vector<int> cands;
  for (int p = 0; p < num_nodes_; ++p) {
    if (p == ctx.view.self() || ctx.view.state(p) == PeerState::kDead) {
      continue;
    }
    cands.push_back(p);
  }
  for (int k = 0; k < cfg_.indirect_k && !cands.empty(); ++k) {
    const std::size_t i = ctx.rng.next_below(cands.size());
    const int dst = cands[i];
    cands[i] = cands.back();
    cands.pop_back();
    send_msg(ctx, ep, dst, kGossip, dst, ctx.view.self(), 0);
    ctx.counters.add(kCtrEagerGossip);
  }
}

bool Service::passively_fresh(NodeCtx& ctx, Endpoint& ep, int peer) const {
  (void)ctx;
  if (cfg_.suppress_window <= 0) return false;
  const sim::Time lr = ep.engine().last_rx_from(peer);
  return lr > 0 && cluster_.sim().now() - lr <= cfg_.suppress_window;
}

int Service::next_probe_target(NodeCtx& ctx) {
  for (std::size_t tried = 0; tried < ctx.probe_order.size(); ++tried) {
    if (ctx.probe_pos >= ctx.probe_order.size()) {
      ctx.probe_pos = 0;
      for (std::size_t k = ctx.probe_order.size(); k > 1; --k) {
        std::swap(ctx.probe_order[k - 1],
                  ctx.probe_order[ctx.rng.next_below(k)]);
      }
    }
    const int cand = ctx.probe_order[ctx.probe_pos++];
    if (ctx.view.state(cand) != PeerState::kDead) return cand;
  }
  return -1;  // everyone else is dead
}

void Service::start_probe(NodeCtx& ctx, Endpoint& ep) {
  if (ctx.probe.target >= 0) return;  // previous round still awaiting acks
  const int target = next_probe_target(ctx);
  if (target < 0) return;
  if (passively_fresh(ctx, ep, target)) {
    // The peer's own frames arrived within the window: provably alive, no
    // dedicated probe needed. This is what keeps a busy cluster's probe
    // traffic near zero.
    ctx.counters.add(kCtrProbesSuppressed);
    mark_peer_alive(ctx, target);
    return;
  }
  if (!conn_or_null(ctx, ep, target)) {
    const sim::Time started = ctx.connect_started[target];
    if (started != 0 &&
        cluster_.sim().now() - started > cfg_.suspect_timeout) {
      // The handshake itself cannot complete — the peer (or its links) is
      // gone. Treat like a failed probe and move on to the next target.
      apply_update(ctx, target, PeerState::kSuspect,
                   ctx.view.incarnation(target));
    } else if (ctx.probe_pos > 0) {
      // Still handshaking: retry the SAME target next round instead of
      // advancing. Otherwise a cold-started cluster burns every round on a
      // fresh handshake and never sends a single ping (and a crashed peer
      // is only re-examined after a full n-1 round cycle).
      --ctx.probe_pos;
    }
    return;
  }
  const std::uint64_t seq = ctx.next_seq++;
  // Root span of this probe round; the ping (and any later ping-req
  // fan-out) adopts it, so the whole round stitches into one trace.
  trace::TraceRecorder* tr = cluster_.tracer();
  const trace::SpanContext pctx =
      tr != nullptr ? tr->new_root() : trace::SpanContext{};
  {
    const trace::SpanScope scope(pctx);
    send_msg(ctx, ep, target, kPing, target, ctx.view.self(), seq);
  }
  ctx.counters.add(kCtrPingsSent);
  ctx.counters.add(kCtrProbeMsgs);
  ctx.probe = Probe{target, seq, cluster_.sim().now() + cfg_.ping_timeout,
                    false, cluster_.sim().now(), pctx};
}

void Service::advance_probe(NodeCtx& ctx, Endpoint& ep) {
  if (ctx.probe.target < 0 || cluster_.sim().now() < ctx.probe.deadline) {
    return;
  }
  const int target = ctx.probe.target;
  if (passively_fresh(ctx, ep, target)) {
    record_probe_span(cluster_.tracer(), cluster_.sim().now(),
                      ctx.view.self(), ctx.probe.started, ctx.probe.ctx,
                      target, /*acked=*/true);
    ctx.probe.target = -1;  // its frames arrived while we waited
    ctx.counters.add(kCtrProbesSuppressed);
    return;
  }
  // Ping-reqs continue the probe round's span.
  const trace::SpanScope scope(ctx.probe.ctx);
  if (!ctx.probe.indirect) {
    // Direct ping timed out: ask k random live peers to probe on our
    // behalf (SWIM's ping-req — distinguishes a dead peer from a lossy or
    // congested direct path).
    int sent = 0;
    std::vector<int> cands;
    for (int p = 0; p < num_nodes_; ++p) {
      if (p == ctx.view.self() || p == target) continue;
      if (ctx.view.state(p) == PeerState::kDead) continue;
      cands.push_back(p);
    }
    for (int k = 0; k < cfg_.indirect_k && !cands.empty(); ++k) {
      const std::size_t i = ctx.rng.next_below(cands.size());
      const int helper = cands[i];
      cands[i] = cands.back();
      cands.pop_back();
      send_msg(ctx, ep, helper, kPingReq, target, ctx.view.self(),
               ctx.probe.seq);
      ctx.counters.add(kCtrPingReqsSent);
      ctx.counters.add(kCtrProbeMsgs);
      ++sent;
    }
    if (sent > 0) {
      ctx.probe.indirect = true;
      ctx.probe.deadline = cluster_.sim().now() + cfg_.indirect_timeout;
      return;
    }
  }
  // No ack, direct or indirect: suspect (refutable — not a down-mark yet).
  record_probe_span(cluster_.tracer(), cluster_.sim().now(), ctx.view.self(),
                    ctx.probe.started, ctx.probe.ctx, target,
                    /*acked=*/false);
  ctx.probe.target = -1;
  apply_update(ctx, target, PeerState::kSuspect,
               ctx.view.incarnation(target));
}

void Service::check_suspects(NodeCtx& ctx) {
  if (ctx.num_suspects == 0) return;
  const sim::Time now = cluster_.sim().now();
  for (int p = 0; p < num_nodes_; ++p) {
    if (ctx.suspect_since[p] == 0 ||
        ctx.view.state(p) != PeerState::kSuspect) {
      continue;
    }
    if (now - ctx.suspect_since[p] > cfg_.suspect_timeout) {
      apply_update(ctx, p, PeerState::kDead, ctx.view.incarnation(p));
    }
  }
}

// ---------------------------------------------------------------------------
// Fibers
// ---------------------------------------------------------------------------

void Service::fiber(Endpoint& ep) {
  NodeCtx& ctx = *nodes_[ep.node_id()];
  ctx.ep = &ep;
  // Desynchronize round starts across nodes (same spirit as jittered cron).
  sim::Time next_round =
      cluster_.sim().now() + cfg_.period +
      sim::Time(ctx.rng.next_below(
          static_cast<std::uint64_t>(std::max<sim::Time>(1, cfg_.period))));
  while (!stop_) {
    Notification n;
    while (ep.poll_notification(&n, cfg_.tag)) handle_msg(ctx, ep, n);
    advance_probe(ctx, ep);
    if (cluster_.sim().now() >= next_round) {
      next_round = cluster_.sim().now() + cfg_.period;
      start_probe(ctx, ep);
    }
    check_suspects(ctx);
    idle_wait(cfg_.poll);
  }
}

void Service::mesh_fiber(Endpoint& ep) {
  // The pre-SWIM baseline: every node one-sided-writes a heartbeat counter
  // to EVERY peer each period and marks silent peers dead after
  // mesh_timeout. O(n) probe frames per node per period, no suspicion.
  NodeCtx& ctx = *nodes_[ep.node_id()];
  const int me = ctx.view.self();
  proto::MemorySpace& mem = ep.memory();
  while (!stop_) {
    *mem.as<std::uint64_t>(hb_src_va_) = ++ctx.mesh_counter;
    for (int peer = 0; peer < num_nodes_; ++peer) {
      if (peer == me || ctx.view.is_down(peer)) continue;
      proto::Connection* pc = conn_or_null(ctx, ep, peer);
      if (!pc) continue;
      Connection(&ep, pc).rdma_write(hb_slot_va(me), hb_src_va_, 8,
                                     kOpFlagUrgent);
      ctx.counters.add(kCtrProbeMsgs);
    }
    idle_wait(cfg_.period);
    const sim::Time now = cluster_.sim().now();
    for (int peer = 0; peer < num_nodes_; ++peer) {
      if (peer == me || ctx.view.is_down(peer)) continue;
      const std::uint64_t v = *mem.as<std::uint64_t>(hb_slot_va(peer));
      if (v != ctx.mesh_last_val[peer]) {
        ctx.mesh_last_val[peer] = v;
        ctx.mesh_last_change[peer] = now;
      } else if (ctx.mesh_last_change[peer] == 0) {
        // Handshake grace: count silence from the first check, not t=0, or
        // slow connection setup at scale reads as a death.
        ctx.mesh_last_change[peer] = now;
      } else if (now - ctx.mesh_last_change[peer] > cfg_.mesh_timeout) {
        transition(ctx, peer, PeerState::kDead);
        ctx.counters.add(kCtrDeadMarks);
      }
    }
  }
}

}  // namespace multiedge::member
