// SWIM-style gossip membership over the MultiEdge core API.
//
// Replaces the KV layer's all-pairs heartbeat mesh with the scalable
// detector shape from Das et al.'s SWIM: each node probes ONE randomized
// round-robin peer per protocol period (constant per-node probe load instead
// of O(n)), falls back to k indirect ping-reqs through random helpers when
// the direct ping times out, SUSPECTS rather than kills a silent peer, and
// disseminates state changes epidemically by piggybacking a bounded number
// of membership updates on every protocol message (each update is
// retransmitted O(log n) times, so a change reaches all n members in
// O(log n) periods with high probability).
//
// Two MultiEdge-specific twists:
//
//  * Passive liveness. The protocol engine stamps the arrival time of every
//    frame per source node (Engine::last_rx_from). A peer whose data or ack
//    frames arrived within `suppress_window` is provably alive, so its probe
//    is suppressed entirely — on a busy cluster the detector rides the
//    application's own traffic and sends almost no dedicated probes.
//
//  * Refutable suspicion. Suspicion gossip reaching the suspected node makes
//    it bump its incarnation number and gossip Alive(inc+1), which overrides
//    the suspicion everywhere (standard SWIM). Only a suspicion that matures
//    for `suspect_timeout` without refutation becomes Dead — and Dead is
//    sticky for the session, preserving the KV layer's sticky-down +
//    backup-promotion semantics (rejoin/resync stays future work).
//
// Messages are 8-byte-aligned records written into per-(source, slot) inbox
// rings on the receiver (urgent + notify + backward-fenced writes, own
// notification tag), exactly the mailbox idiom the KV RPCs use. A legacy
// `mesh` mode reproduces the old all-pairs heartbeat detector so benches can
// measure SWIM against it on identical plumbing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/api.hpp"
#include "sim/random.hpp"
#include "stats/counters.hpp"
#include "trace/trace.hpp"

namespace multiedge::member {

/// Notification tag for membership traffic (DSM=0, coll=1, kv=8+).
inline constexpr std::uint8_t kMemberTag = 2;

enum class PeerState : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

const char* state_str(PeerState s);

struct MemberConfig {
  /// Protocol period: one probe round (direct ping, then indirect round)
  /// per period per node.
  sim::Time period = sim::us(500);
  /// Deadline for the direct ping's ack.
  sim::Time ping_timeout = sim::us(200);
  /// Deadline for any indirect ack after the ping-req fan-out.
  sim::Time indirect_timeout = sim::us(400);
  /// A matured (unrefuted) suspicion becomes Dead after this long.
  sim::Time suspect_timeout = sim::ms(2);
  /// Helpers asked to probe on our behalf when the direct ping times out.
  int indirect_k = 3;
  /// Max piggybacked membership updates per message.
  int max_updates = 8;
  /// Each update is piggybacked on `retransmit_factor * (ceil_log2(n) + 1)`
  /// outgoing messages before it is dropped from the gossip buffer.
  int retransmit_factor = 3;
  /// A peer whose frames (any protocol traffic) arrived within this window
  /// is implicitly alive; its probe is suppressed. 0 disables suppression.
  sim::Time suppress_window = sim::us(400);
  /// Notification-poll granularity of the member fiber. Bounds ack latency,
  /// so keep it well under ping_timeout.
  sim::Time poll = sim::us(25);
  std::uint8_t tag = kMemberTag;
  std::uint64_t seed = 0x51f7eedull;
  /// Inbox ring slots per source node (tolerates this many unconsumed
  /// messages from one source before overwrite).
  int inbox_slots = 8;

  /// Legacy baseline: all-pairs heartbeat writes every `period`, silence
  /// longer than `mesh_timeout` marks Dead directly (the detector the KV
  /// layer used before SWIM). No suspicion, no gossip, O(n) per node.
  bool mesh = false;
  sim::Time mesh_timeout = sim::ms(2);
};

/// Upper bound on crash-to-everyone-knows convergence (detection by the
/// unlucky last prober plus epidemic dissemination), used by the test suite:
/// every node cycles through all peers in at most n-1 periods... but with
/// probe suppression and randomized round-robin, SOME node probes the dead
/// peer within a couple of periods with high probability; dissemination then
/// takes O(log n) periods. The bound below is deliberately loose (it is a
/// test ceiling, not an expectation).
sim::Time detection_bound(const MemberConfig& cfg, int n);

/// One node's membership view (read-side API; updated by the service fiber).
class View {
 public:
  View(int self, int n)
      : self_(self),
        state_(n, PeerState::kAlive),
        incarnation_(n, 0),
        down_(n, false) {}

  PeerState state(int peer) const { return state_[peer]; }
  std::uint64_t incarnation(int peer) const { return incarnation_[peer]; }
  /// Dead peers only — suspicion is NOT down (it is refutable).
  bool is_down(int peer) const { return down_[peer]; }
  const std::vector<bool>& down_map() const { return down_; }
  int num_down() const { return num_down_; }
  int self() const { return self_; }

 private:
  friend class Service;
  int self_;
  std::vector<PeerState> state_;
  std::vector<std::uint64_t> incarnation_;
  std::vector<bool> down_;
  int num_down_ = 0;
};

/// Cluster-wide membership service: allocates the symmetric inbox domain and
/// spawns one protocol fiber per node. Construct host-side (before
/// Cluster::run), after any other symmetric allocations. The fibers run
/// until stop() — owners that spawn finite workloads must call stop() when
/// their last worker exits (the KV System does this automatically).
class Service {
 public:
  Service(Cluster& cluster, MemberConfig cfg = {});

  Cluster& cluster() { return cluster_; }
  const MemberConfig& config() const { return cfg_; }
  View& view(int node) { return nodes_[node]->view; }
  const View& view(int node) const { return nodes_[node]->view; }

  void stop() { stop_ = true; }
  bool stopped() const { return stop_; }

  /// Observer hook, fired on EVERY state transition in any node's view:
  /// (observer node, peer, new state, sim time). Multiple subscribers
  /// compose — the KV layer's down-mark counters, the convergence benches,
  /// and the membership shadow-checker can all listen at once.
  void add_on_transition(
      std::function<void(int, int, PeerState, sim::Time)> fn) {
    on_transition_.push_back(std::move(fn));
  }

  stats::Counters& counters(int node) { return nodes_[node]->counters; }
  stats::Counters aggregate_counters() const;

  sim::Time detection_bound() const {
    return member::detection_bound(cfg_, cluster_.num_nodes());
  }

 private:
  struct NodeCtx;

  void fiber(Endpoint& ep);
  void mesh_fiber(Endpoint& ep);

  // --- wire helpers ---
  proto::Connection* conn_or_null(NodeCtx& ctx, Endpoint& ep, int peer);
  void send_msg(NodeCtx& ctx, Endpoint& ep, int dst, std::uint8_t type,
                int target, int origin, std::uint64_t seq);
  void handle_msg(NodeCtx& ctx, Endpoint& ep, const Notification& n);

  // --- state machine ---
  void start_probe(NodeCtx& ctx, Endpoint& ep);
  void advance_probe(NodeCtx& ctx, Endpoint& ep);
  bool passively_fresh(NodeCtx& ctx, Endpoint& ep, int peer) const;
  void apply_update(NodeCtx& ctx, int node, PeerState st, std::uint64_t inc);
  void eager_disseminate(NodeCtx& ctx, Endpoint& ep);
  void transition(NodeCtx& ctx, int peer, PeerState st);
  void enqueue_gossip(NodeCtx& ctx, int node);
  void mark_peer_alive(NodeCtx& ctx, int peer);
  int next_probe_target(NodeCtx& ctx);
  void check_suspects(NodeCtx& ctx);

  Cluster& cluster_;
  MemberConfig cfg_;
  int num_nodes_;
  int gossip_budget_;  // retransmit_factor * (ceil_log2(n) + 1)

  // Symmetric memory layout (same VAs on every node).
  std::uint32_t msg_stride_ = 0;
  std::uint64_t inbox_va_ = 0;   // [src][slot] message rings
  std::uint64_t build_va_ = 0;   // per-node outbound build buffer
  std::uint64_t hb_va_ = 0;      // mesh mode: per-peer heartbeat words
  std::uint64_t hb_src_va_ = 0;  // mesh mode: local heartbeat scratch

  std::uint64_t inbox_slot_va(int src, int slot) const {
    return inbox_va_ +
           (static_cast<std::uint64_t>(src) * cfg_.inbox_slots + slot) *
               msg_stride_;
  }
  std::uint64_t hb_slot_va(int src) const {
    return hb_va_ + static_cast<std::uint64_t>(src) * 8;
  }

  struct GossipEntry {
    int node;
    int sends_left;
  };

  /// An in-flight probe awaiting acks (direct or indirect phase).
  struct Probe {
    int target = -1;
    std::uint64_t seq = 0;
    sim::Time deadline = 0;
    bool indirect = false;  // ping-reqs already fanned out
    sim::Time started = 0;  // probe round start (span start time)
    trace::SpanContext ctx;  // root span: pings/ping-reqs stitch under it
  };

  struct NodeCtx {
    NodeCtx(int self, int n, std::uint64_t seed)
        : view(self, n), rng(seed) {}
    View view;
    sim::Rng rng;
    Endpoint* ep = nullptr;  // set by fiber(); carrier for eager gossip
    std::vector<proto::Connection*> conns;  // lazily initiated, by peer
    std::vector<sim::Time> connect_started;  // first connect() attempt, by peer
    std::vector<int> next_inbox_slot;       // outbound ring cursor, by peer
    std::vector<int> probe_order;           // shuffled round-robin schedule
    std::size_t probe_pos = 0;
    Probe probe;
    std::uint64_t next_seq = 1;
    std::vector<GossipEntry> gossip;
    std::vector<sim::Time> suspect_since;  // by peer; 0 = not suspected
    int num_suspects = 0;
    std::vector<std::uint64_t> mesh_last_val;   // mesh mode
    std::vector<sim::Time> mesh_last_change;    // mesh mode
    std::uint64_t mesh_counter = 0;
    stats::Counters counters;
  };

  std::vector<std::unique_ptr<NodeCtx>> nodes_;
  bool stop_ = false;
  std::vector<std::function<void(int, int, PeerState, sim::Time)>>
      on_transition_;
};

}  // namespace multiedge::member
