#include "rma/rma.hpp"

#include <cassert>
#include <stdexcept>

namespace multiedge::rma {

namespace {

const stats::CounterId kCtrEpochs = stats::CounterRegistry::intern("rma_epochs");
const stats::CounterId kCtrPuts = stats::CounterRegistry::intern("rma_puts");
const stats::CounterId kCtrGets = stats::CounterRegistry::intern("rma_gets");
const stats::CounterId kCtrBytesPut =
    stats::CounterRegistry::intern("rma_bytes_put");
const stats::CounterId kCtrNotifiesSent =
    stats::CounterRegistry::intern("rma_notifies_sent");
const stats::CounterId kCtrNotifiesMatched =
    stats::CounterRegistry::intern("rma_notifies_matched");
const stats::CounterId kCtrNotifiesQueued =
    stats::CounterRegistry::intern("rma_notifies_queued");
const stats::CounterId kCtrFlushes =
    stats::CounterRegistry::intern("rma_flushes");
const stats::CounterId kCtrFlushStalls =
    stats::CounterRegistry::intern("rma_flush_stalls");

// Completed handles are swept once the tracked set reaches this size, so a
// long-lived window that never flushes (fire-and-forget signal streams)
// stays bounded.
constexpr std::size_t kPruneThreshold = 64;

}  // namespace

Window::Window(Endpoint& ep, WindowConfig cfg, ConnProvider conns)
    : ep_(ep),
      cfg_(cfg),
      conn_of_(std::move(conns)),
      nq_(ep, cfg.tag, counters_, kCtrNotifiesMatched, kCtrNotifiesQueued) {
  assert(cfg_.tag >= 0 && cfg_.tag <= 255 && "rma: tag must fit 8 bits");
  if (!conn_of_) conns_.resize(ep_.cluster().num_nodes());
  if (cfg_.notify_tokens) {
    // Per-source token slots + the local scratch the token value is written
    // from. Symmetric as long as every node constructs its windows in the
    // same order (the same convention every symmetric layout here relies on).
    tok_base_ = ep_.alloc(std::size_t{8} * ep_.cluster().num_nodes());
    tok_src_ = ep_.alloc(8);
  }
}

Connection& Window::conn(int peer) {
  if (conn_of_) return conn_of_(peer);
  assert(peer >= 0 && peer < static_cast<int>(conns_.size()) &&
         peer != ep_.node_id());
  if (!conns_[peer].valid()) conns_[peer] = ep_.connect(peer);
  return conns_[peer];
}

void Window::check_range(std::uint64_t remote_va, std::uint32_t bytes) const {
  if (cfg_.bytes == 0) return;
  if (remote_va < cfg_.base || remote_va + bytes > cfg_.base + cfg_.bytes) {
    throw std::logic_error("rma: access outside the window region");
  }
}

std::uint16_t Window::notify_flags(bool fenced) const {
  std::uint16_t flags = kOpFlagNotify | op_tag_flags(
      static_cast<std::uint8_t>(cfg_.tag));
  if (cfg_.urgent) flags |= kOpFlagUrgent;
  if (cfg_.quiet) flags |= kOpFlagQuietNotify;
  if (fenced) flags |= kOpFlagBackwardFence;
  if (cfg_.batched) flags |= kOpFlagBatched;
  return flags;
}

// ---------------------------------------------------------------------------
// Epochs
// ---------------------------------------------------------------------------

void Window::open() {
  if (epoch_open_) throw std::logic_error("rma: epoch already open");
  epoch_open_ = true;
  counters_.add(kCtrEpochs);
}

void Window::close() {
  if (!epoch_open_) throw std::logic_error("rma: close without an open epoch");
  epoch_open_ = false;
  // Epoch close issues the doorbell: one kernel entry releases every op the
  // epoch parked in the submission rings. Free when nothing is batched.
  if (cfg_.batched) ep_.flush();
}

// ---------------------------------------------------------------------------
// Access
// ---------------------------------------------------------------------------

OpHandle Window::put(int peer, std::uint64_t remote_va, std::uint64_t local_va,
                     std::uint32_t bytes) {
  if (!epoch_open_) throw std::logic_error("rma: put outside an open epoch");
  check_range(remote_va, bytes);
  counters_.add(kCtrPuts);
  counters_.add(kCtrBytesPut, bytes);
  return issue(peer, remote_va, local_va, bytes,
               cfg_.batched ? kOpFlagBatched : kOpFlagNone, /*is_read=*/false);
}

OpHandle Window::get(int peer, std::uint64_t local_va, std::uint64_t remote_va,
                     std::uint32_t bytes) {
  if (!epoch_open_) throw std::logic_error("rma: get outside an open epoch");
  check_range(remote_va, bytes);
  counters_.add(kCtrGets);
  return issue(peer, remote_va, local_va, bytes,
               cfg_.batched ? kOpFlagBatched : kOpFlagNone, /*is_read=*/true);
}

OpHandle Window::put_notify(int peer, std::uint64_t remote_va,
                            std::uint64_t local_va, std::uint32_t bytes) {
  return put_notify(peer, remote_va, local_va, bytes, cfg_.fenced);
}

OpHandle Window::put_notify(int peer, std::uint64_t remote_va,
                            std::uint64_t local_va, std::uint32_t bytes,
                            bool fenced) {
  check_range(remote_va, bytes);
  counters_.add(kCtrNotifiesSent);
  counters_.add(kCtrBytesPut, bytes);
  return issue(peer, remote_va, local_va, bytes, notify_flags(fenced),
               /*is_read=*/false);
}

OpHandle Window::get_notify(int peer, std::uint64_t local_va,
                            std::uint64_t remote_va, std::uint32_t bytes) {
  if (tok_base_ == 0) {
    throw std::logic_error("rma: get_notify requires WindowConfig::notify_tokens");
  }
  check_range(remote_va, bytes);
  counters_.add(kCtrGets);
  OpHandle h = issue(peer, remote_va, local_va, bytes,
                     cfg_.batched ? kOpFlagBatched : kOpFlagNone,
                     /*is_read=*/true);
  // Token write, backward-fenced behind the read REQUEST on the same
  // connection: the target matches the notification only after its side of
  // the read has been served. Always fenced — that ordering is the point.
  *ep_.memory().as<std::uint64_t>(tok_src_) = ++tok_gen_;
  counters_.add(kCtrNotifiesSent);
  issue(peer, token_va(ep_.node_id()), tok_src_, 8,
        notify_flags(/*fenced=*/true), /*is_read=*/false);
  return h;
}

std::uint64_t Window::token_va(int src) const {
  assert(tok_base_ != 0 && "rma: window has no token block");
  return tok_base_ + std::uint64_t{8} * static_cast<std::uint64_t>(src);
}

NotifyEvent Window::wait_notify(int src, std::uint64_t va) {
  return nq_.wait(src, va);
}

bool Window::test_notify(NotifyEvent* out, int src, std::uint64_t va) {
  return nq_.test(out, src, va);
}

// ---------------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------------

void Window::flush() {
  counters_.add(kCtrFlushes);
  ep_.flush();  // release anything still parked behind an un-rung doorbell
  bool stalled = false;
  for (const OpHandle& h : inflight_) {
    if (!h.test()) {
      stalled = true;
      h.wait();
    }
  }
  if (stalled) counters_.add(kCtrFlushStalls);
  inflight_.clear();
}

OpHandle Window::issue(int peer, std::uint64_t remote_va,
                       std::uint64_t local_va, std::uint32_t bytes,
                       std::uint16_t flags, bool is_read) {
  Connection& c = conn(peer);
  trace::TraceRecorder* tr = ep_.cluster().tracer();
  OpHandle h;
  if (tr != nullptr) {
    // kRmaOp span, issue -> local completion. The scope makes the wire op
    // submitted below adopt it as parent, stitching window traffic into the
    // caller's causal tree.
    const trace::SpanContext cur = trace::SpanScope::current();
    const trace::SpanContext ctx =
        cur.active() ? tr->new_child(cur) : tr->new_root();
    const std::uint64_t parent = cur.span_id;
    const sim::Time start = ep_.cluster().sim().now();
    Cluster* cluster = &ep_.cluster();
    const int node = ep_.node_id();
    // Anchor the span id the moment the op is issued (kOpSubmit's trick): a
    // quiet fire-and-forget op whose ack never lands before the run ends
    // still resolves as a parent in the stitched tree.
    tr->record(start, trace::EventType::kRmaSubmit, node, -1, -1,
               static_cast<std::uint64_t>(peer), bytes, ctx, parent);
    trace::SpanScope scope(ctx);
    h = is_read ? c.rdma_read(local_va, remote_va, bytes, flags)
                : c.rdma_write(remote_va, local_va, bytes, flags);
    h.on_complete([cluster, ctx, parent, start, node, peer, bytes]() {
      if (auto* t = cluster->tracer()) {
        t->record_span(start, cluster->sim().now() - start,
                       trace::EventType::kRmaOp, node, -1, -1,
                       static_cast<std::uint64_t>(peer), bytes, ctx, parent);
      }
    });
  } else {
    h = is_read ? c.rdma_read(local_va, remote_va, bytes, flags)
                : c.rdma_write(remote_va, local_va, bytes, flags);
  }
  track(h);
  return h;
}

void Window::track(const OpHandle& h) {
  if (inflight_.size() >= kPruneThreshold) {
    std::erase_if(inflight_, [](const OpHandle& t) { return t.test(); });
  }
  inflight_.push_back(h);
}

}  // namespace multiedge::rma
