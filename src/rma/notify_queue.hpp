// Matching queue for notified one-sided access (DESIGN.md §17).
//
// A notified put lands in the target's memory and leaves one Notification in
// the target engine's queue. The NotifyQueue is the receive-side matcher: a
// waiter asks for "the next notified access from `src` at address `va`" and
// either consumes a queued match or blocks. Matching rules:
//
//  * tag      — fixed per queue (the window's demultiplexing tag). Other
//               tags' notifications are never touched.
//  * src      — kAnySrc matches any initiating node.
//  * va       — kAnyVa matches any target address. Windows that pack many
//               logical channels into one region (e.g. coll's per-rank slot
//               array) match on the exact slot address.
//
// Non-blocking probes (test) match directly against the engine's queue via
// Endpoint::poll_notification_match — mismatches stay queued, in arrival
// order, for whoever they belong to. The blocking path (wait) consumes in
// per-tag arrival order and stashes mismatches locally: this mirrors the
// syscall-per-pop cost model of a raw wait_notification loop, so rebasing a
// consumer onto the queue is time- and fingerprint-identical to the
// hand-rolled stash idiom it replaces (see tests/rma_test.cpp differentials).
#pragma once

#include <cstdint>
#include <deque>

#include "core/api.hpp"
#include "stats/counters.hpp"

namespace multiedge::rma {

inline constexpr int kAnySrc = -1;
inline constexpr std::uint64_t kAnyVa = proto::Engine::kAnyNotifyVa;

/// One matched notified access, as handed to the waiter.
struct NotifyEvent {
  int src = -1;             ///< initiating node
  std::uint64_t va = 0;     ///< target-side address the payload landed at
  std::uint32_t bytes = 0;  ///< payload count carried by the notification
  std::uint64_t op_id = 0;  ///< initiator-side op id (debugging / dedup)
  trace::SpanContext ctx;   ///< initiator's span (for stitching handlers)
};

class NotifyQueue {
 public:
  NotifyQueue(Endpoint& ep, int tag, stats::Counters& counters,
              stats::CounterId ctr_matched, stats::CounterId ctr_queued)
      : ep_(ep),
        tag_(tag),
        counters_(counters),
        ctr_matched_(ctr_matched),
        ctr_queued_(ctr_queued) {}

  /// Non-blocking probe: true and fills `*out` if a matching notified access
  /// is available (stashed or still queued in the engine).
  bool test(NotifyEvent* out, int src = kAnySrc, std::uint64_t va = kAnyVa) {
    if (take_stashed(out, src, va)) return true;
    Notification n;
    if (ep_.poll_notification_match(&n, tag_, src, va)) {
      counters_.add(ctr_matched_);
      *out = to_event(n);
      return true;
    }
    return false;
  }

  /// Block the calling fiber until a matching notified access arrives.
  /// Consumes this tag's notifications in arrival order; mismatches are
  /// stashed for later matches (they are someone else's, on this queue).
  NotifyEvent wait(int src = kAnySrc, std::uint64_t va = kAnyVa) {
    NotifyEvent ev;
    if (take_stashed(&ev, src, va)) return ev;
    for (;;) {
      Notification n = ep_.wait_notification(tag_);
      if (matches(n, src, va)) {
        counters_.add(ctr_matched_);
        return to_event(n);
      }
      counters_.add(ctr_queued_);
      stash_.push_back(n);
    }
  }

  int tag() const { return tag_; }
  std::size_t stashed() const { return stash_.size(); }

 private:
  static bool matches(const Notification& n, int src, std::uint64_t va) {
    return (src == kAnySrc || n.src_node == src) &&
           (va == kAnyVa || n.va == va);
  }
  static NotifyEvent to_event(const Notification& n) {
    return NotifyEvent{n.src_node, n.va, n.size, n.op_id, n.ctx};
  }
  bool take_stashed(NotifyEvent* out, int src, std::uint64_t va) {
    for (auto it = stash_.begin(); it != stash_.end(); ++it) {
      if (matches(*it, src, va)) {
        counters_.add(ctr_matched_);
        *out = to_event(*it);
        stash_.erase(it);
        return true;
      }
    }
    return false;
  }

  Endpoint& ep_;
  int tag_;
  stats::Counters& counters_;
  stats::CounterId ctr_matched_;
  stats::CounterId ctr_queued_;
  std::deque<Notification> stash_;
};

}  // namespace multiedge::rma
