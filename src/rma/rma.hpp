// Notified-access RMA: windows, epochs, flush (DESIGN.md §17).
//
// foMPI (Gerstenberger et al., PAPERS.md) showed that three primitives —
// exposure/access epochs over registered windows, flush, and *notified
// access* (a one-sided write the target can wait on without polling) — are a
// small, reusable synchronization vocabulary that scales to hundreds of
// thousands of cores. This layer generalizes the hand-rolled urgent-notify +
// fence idioms that grew separately in the KV store (replication acks), the
// collectives (put+signal pairs) and the DSM (barrier write-notices) into
// one audited primitive set. No new wire format: every Window operation
// compiles down to the existing flag classes (kOpFlagNotify / Urgent /
// QuietNotify / BackwardFence / Batched + the 8-bit demux tag), so a
// consumer rebased onto a Window is wire- and fingerprint-identical to the
// idiom it replaces (proved by the differential tests in tests/rma_test.cpp).
//
//   Window win{ep, {.base = va, .bytes = len, .tag = 3}};
//   // producer                           // consumer
//   win.open();                           rma::NotifyEvent ev =
//   win.put(peer, dst, src, n);               win.wait_notify(src);
//   win.put_notify(peer, flag, tok, 8);   // payload of `ev.src` is visible:
//   win.close();   // rings the doorbell  // the notified put is fenced
//                  // when cfg.batched    // behind the epoch's plain puts
//
// Epoch rules (misuse throws std::logic_error):
//  * put()/get() require an open epoch; open() twice / close() without an
//    open epoch are errors.
//  * put_notify()/get_notify() work inside OR outside an epoch — a notified
//    access carries its own synchronization.
//  * close() ends the epoch and, when cfg.batched, issues the submission-
//    ring doorbell (one syscall releases the whole epoch). It does NOT wait.
//  * flush() = local + remote completion of every tracked op: in this
//    transport an op's ack arrives only after the target applied its data,
//    so waiting for local completion is remote completion. Ordering without
//    waiting is cheaper: a fenced notified put (cfg.fenced, the default)
//    publishes every earlier op on the same connection via BackwardFence.
//
// Each window op records a kRmaOp trace span; the wire op submitted under it
// parents into the span, stitching window traffic into the causal tree.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/api.hpp"
#include "rma/notify_queue.hpp"
#include "stats/counters.hpp"

namespace multiedge::rma {

struct WindowConfig {
  /// Symmetric VA of the exposed region. bytes == 0 disables range checks
  /// (for windows spanning a whole subsystem's symmetric layout).
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  /// Notification demultiplexing tag (0..255) — the window's channel.
  int tag = 0;
  /// Notified ops ride the urgent (solicited-event) wire class: they bypass
  /// interrupt moderation and wake the target immediately.
  bool urgent = true;
  /// Notified ops ride kOpFlagQuietNotify: notify without forcing a
  /// completion signal under selective signaling (DESIGN.md §15).
  bool quiet = false;
  /// Notified ops carry kOpFlagBackwardFence: the notification is delivered
  /// only after every earlier op on the same connection has been applied —
  /// this is what makes put(); put_notify() a publication.
  bool fenced = true;
  /// Epoch ops park in the submission rings (kOpFlagBatched); close() rings
  /// the doorbell. Off: urgent/fenced ops submit eagerly as usual.
  bool batched = false;
  /// Allocate a per-source token block (8 bytes/node, symmetric — construct
  /// windows in the same order on every node). Required for get_notify.
  bool notify_tokens = false;
};

/// One registered symmetric region plus its access-epoch state, completion
/// tracking and receive-side notify matching queue.
class Window {
 public:
  /// Connection lookup, so a window can ride its consumer's existing
  /// connection cache (per-connection FIFO/fence semantics — and wire
  /// identity — depend on sharing connections with the surrounding code).
  using ConnProvider = std::function<Connection&(int peer)>;

  /// With no provider the window keeps its own lazily-connected cache.
  Window(Endpoint& ep, WindowConfig cfg, ConnProvider conns = {});

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  // --- access epochs ---
  void open();
  void close();
  bool epoch_open() const { return epoch_open_; }

  // --- one-sided access (requires an open epoch) ---
  /// Plain write: local [local_va, ..+bytes) -> peer [remote_va, ...).
  OpHandle put(int peer, std::uint64_t remote_va, std::uint64_t local_va,
               std::uint32_t bytes);
  /// Plain read: peer [remote_va, ..+bytes) -> local [local_va, ...).
  OpHandle get(int peer, std::uint64_t local_va, std::uint64_t remote_va,
               std::uint32_t bytes);

  // --- notified access (inside or outside an epoch) ---
  /// Write + notification: the payload lands at the target and one
  /// NotifyEvent {src, va, bytes} becomes matchable in the target window's
  /// queue. Fencing defaults to cfg.fenced; the overload pins it per call.
  OpHandle put_notify(int peer, std::uint64_t remote_va,
                      std::uint64_t local_va, std::uint32_t bytes);
  OpHandle put_notify(int peer, std::uint64_t remote_va,
                      std::uint64_t local_va, std::uint32_t bytes, bool fenced);
  /// Read + notification AT THE TARGET: after the read has been served, a
  /// fenced 8-byte token lands in the target's token slot for this rank
  /// (token_va(rank)), telling the passive side its region was read.
  /// Requires cfg.notify_tokens. Returns the read's handle.
  OpHandle get_notify(int peer, std::uint64_t local_va,
                      std::uint64_t remote_va, std::uint32_t bytes);

  /// Receive side: block for / probe for a matching notified access.
  /// src = kAnySrc and va = kAnyVa widen the match (see notify_queue.hpp).
  NotifyEvent wait_notify(int src = kAnySrc, std::uint64_t va = kAnyVa);
  bool test_notify(NotifyEvent* out, int src = kAnySrc,
                   std::uint64_t va = kAnyVa);

  /// Local + remote completion of every op issued through this window since
  /// the last flush. Implies the doorbell for batched ops.
  void flush();

  /// Target-side address get_notify tokens from `src` land at (symmetric).
  std::uint64_t token_va(int src) const;

  Endpoint& endpoint() { return ep_; }
  const WindowConfig& config() const { return cfg_; }
  /// Per-window counters: rma_epochs, rma_puts, rma_notifies_sent,
  /// rma_notifies_matched, rma_notifies_queued, rma_flushes,
  /// rma_flush_stalls, ...
  const stats::Counters& counters() const { return counters_; }
  std::size_t inflight() const { return inflight_.size(); }

 private:
  Connection& conn(int peer);
  void check_range(std::uint64_t remote_va, std::uint32_t bytes) const;
  std::uint16_t notify_flags(bool fenced) const;
  /// Submit one wire op under a fresh kRmaOp span and track its handle.
  OpHandle issue(int peer, std::uint64_t remote_va, std::uint64_t local_va,
                 std::uint32_t bytes, std::uint16_t flags, bool is_read);
  void track(const OpHandle& h);

  Endpoint& ep_;
  WindowConfig cfg_;
  ConnProvider conn_of_;
  std::vector<Connection> conns_;  // lazy cache when no provider
  stats::Counters counters_;       // declared before nq_ (referenced by it)
  NotifyQueue nq_;
  bool epoch_open_ = false;
  std::vector<OpHandle> inflight_;
  std::uint64_t tok_base_ = 0;  // per-source token slots (notify_tokens)
  std::uint64_t tok_src_ = 0;   // local scratch the token value rides from
  std::uint64_t tok_gen_ = 0;
};

}  // namespace multiedge::rma
