// Hardware-driver layer (§2.1): the hardware-independent interface the
// protocol layer programs against. Drivers perform only simple low-level
// access — frame transmission/reception, interrupt masking, completion
// reaping — while all protocol intelligence lives above.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/frame.hpp"

namespace multiedge::driver {

class NetDriver {
 public:
  virtual ~NetDriver() = default;

  virtual const std::string& name() const = 0;
  virtual net::MacAddr mac() const = 0;
  virtual double gbps() const = 0;

  /// Post a frame for transmission; false if the hardware ring is full.
  virtual bool transmit(net::FramePtr frame) = 0;

  /// Pop the next received frame, nullptr when none.
  virtual net::FramePtr poll_rx() = 0;

  /// Reclaim send-buffer slots; returns how many completed since last call.
  virtual std::uint64_t reap_tx_completions() = 0;

  /// Anything for the protocol thread to process?
  virtual bool events_pending() const = 0;

  virtual void enable_interrupts(bool enabled) = 0;
  virtual bool interrupts_enabled() const = 0;

  /// Low-level interrupt hook. The handler runs in "interrupt context": it
  /// should only mask interrupts and signal the protocol layer.
  virtual void set_interrupt_handler(std::function<void()> handler) = 0;

  /// Free tx descriptor slots (for backpressure decisions).
  virtual std::size_t tx_space() const = 0;
};

}  // namespace multiedge::driver
