// NetDriver implementation over the simulated NIC models. The per-hardware
// differences (ring sizes, DMA latencies, the 10G unmaskable send-completion
// interrupt) live in the NicConfig presets in net/topology.hpp, so this one
// driver class covers the tg3 / e1000 / myri10ge variants the paper supports.
#pragma once

#include "driver/net_driver.hpp"
#include "net/nic.hpp"

namespace multiedge::driver {

class SimNetDriver final : public NetDriver {
 public:
  explicit SimNetDriver(net::Nic& nic) : nic_(nic), name_(nic.config().model) {}

  const std::string& name() const override { return name_; }
  net::MacAddr mac() const override { return nic_.mac(); }
  double gbps() const override { return nic_.config().gbps; }

  bool transmit(net::FramePtr frame) override {
    return nic_.tx(std::move(frame));
  }
  net::FramePtr poll_rx() override { return nic_.rx_pop(); }
  std::uint64_t reap_tx_completions() override {
    return nic_.take_tx_completions();
  }
  bool events_pending() const override { return nic_.events_pending(); }
  void enable_interrupts(bool enabled) override {
    nic_.set_irq_enabled(enabled);
  }
  bool interrupts_enabled() const override { return nic_.irq_enabled(); }
  void set_interrupt_handler(std::function<void()> handler) override {
    nic_.set_irq_handler(std::move(handler));
  }
  std::size_t tx_space() const override { return nic_.tx_space(); }

  const net::Nic::Stats& nic_stats() const { return nic_.stats(); }
  net::Nic& nic() { return nic_; }

 private:
  net::Nic& nic_;
  std::string name_;
};

}  // namespace multiedge::driver
