// Collective layer demo: ring all-reduce and the dissemination barrier over
// the striped dual-rail 2L-1G setup, with per-collective counters printed at
// the end. Compare CollAlgo::kRing against kLinear (edit below) to see the
// bandwidth-optimal ring pipeline both rails.
#include <cstdio>

#include "coll/coll.hpp"
#include "core/api.hpp"

using namespace multiedge;

int main() {
  constexpr int kNodes = 4;
  constexpr std::uint32_t kCount = 128 * 1024;  // doubles per node (1 MiB)

  Cluster cluster(config_2l_1g(kNodes));

  coll::CollConfig ccfg;
  ccfg.max_data_bytes = kCount * 8;
  ccfg.all_reduce_algo = coll::CollAlgo::kRing;  // try kLinear for contrast
  coll::CollDomain domain(cluster, ccfg);

  std::vector<stats::Counters> per_node(kNodes);
  sim::Time t0 = 0, t1 = 0;
  for (int i = 0; i < kNodes; ++i) {
    cluster.spawn(i, "worker", [&, i](Endpoint& ep) {
      coll::Communicator comm(domain, ep);
      // Symmetric allocation: every node allocates in the same order, so
      // the buffer sits at the same VA cluster-wide.
      const std::uint64_t va = ep.memory().alloc(kCount * 8, 64);
      auto* v = ep.memory().as<double>(va);
      for (std::uint32_t e = 0; e < kCount; ++e) {
        v[e] = static_cast<double>(i + 1);
      }

      comm.barrier();
      if (i == 0) t0 = cluster.sim().now();
      comm.all_reduce(va, kCount, coll::DType::kF64, coll::ReduceOp::kSum);
      comm.barrier();
      if (i == 0) t1 = cluster.sim().now();

      // Every element is now sum(1..kNodes) on every node.
      const double want = kNodes * (kNodes + 1) / 2.0;
      for (std::uint32_t e = 0; e < kCount; ++e) {
        if (v[e] != want) {
          std::printf("node %d: element %u is %f, want %f\n", i, e, v[e],
                      want);
          return;
        }
      }
      per_node[i] = comm.counters();
    });
  }
  cluster.run();

  const double us = sim::to_us(t1 - t0);
  std::printf("all_reduce of %u doubles on %d nodes: %.1f us simulated "
              "(%.2f Gb/s per node)\n",
              kCount, kNodes, us, kCount * 8 * 8.0 / (us * 1e3));
  stats::Counters all;
  for (const auto& c : per_node) all.merge(c);
  for (const auto& [name, value] : all.all()) {
    std::printf("  %-22s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  return 0;
}
