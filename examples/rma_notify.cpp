// Notified-access RMA demo (DESIGN.md §17): a producer streams records into
// a consumer's ring through an access epoch, publishing each batch with one
// fenced notified put. The consumer blocks in wait_notify — no flag polling,
// no receive loop — and the notification's backward fence guarantees every
// record of the batch is visible when the wait returns. The per-window
// counters are printed at the end; try quiet = true or batched = true in the
// WindowConfig to see the flag classes change.
#include <cstdio>

#include "core/api.hpp"
#include "rma/rma.hpp"

using namespace multiedge;

int main() {
  constexpr int kBatches = 16;
  constexpr int kRecords = 8;     // per batch
  constexpr std::uint32_t kRecordBytes = 512;

  Cluster cluster(config_1l_1g(2));

  // Consumer-side layout: a ring of record slots plus one header word the
  // producer's notified put lands in (batch number = publication token).
  const std::uint64_t ring = cluster.memory(0).alloc(kRecords * kRecordBytes);
  const std::uint64_t head = cluster.memory(0).alloc(8);
  const std::uint64_t src = cluster.memory(1).alloc(kRecordBytes);
  const std::uint64_t tok = cluster.memory(1).alloc(8);

  stats::Counters window_counters;
  cluster.spawn(1, "producer", [&](Endpoint& ep) {
    rma::Window win(ep, {.base = ring, .bytes = kRecords * kRecordBytes + 8,
                         .tag = 1});
    for (int b = 1; b <= kBatches; ++b) {
      win.open();  // access epoch: plain puts, no per-op waiting
      for (int r = 0; r < kRecords; ++r) {
        auto* rec = ep.memory().as<std::uint64_t>(src);
        rec[0] = static_cast<std::uint64_t>(b);
        rec[1] = static_cast<std::uint64_t>(r);
        win.put(0, ring + r * kRecordBytes, src, kRecordBytes);
      }
      win.close();
      // The notified put is backward-fenced: delivering it publishes every
      // put of the epoch in one shot.
      *ep.memory().as<std::uint64_t>(tok) = static_cast<std::uint64_t>(b);
      win.put_notify(0, head, tok, 8);
    }
    win.flush();  // local + remote completion of everything outstanding
    window_counters = win.counters();
  });

  cluster.spawn(0, "consumer", [&](Endpoint& ep) {
    rma::Window win(ep, {.base = ring, .bytes = kRecords * kRecordBytes + 8,
                         .tag = 1});
    for (int b = 1; b <= kBatches; ++b) {
      const rma::NotifyEvent ev = win.wait_notify(/*src=*/1, head);
      const std::uint64_t batch = *ep.memory().as<std::uint64_t>(ev.va);
      for (int r = 0; r < kRecords; ++r) {
        const auto* rec =
            ep.memory().as<std::uint64_t>(ring + r * kRecordBytes);
        if (rec[0] < batch || rec[1] != static_cast<std::uint64_t>(r)) {
          std::printf("batch %llu: record %d not published (%llu/%llu)\n",
                      static_cast<unsigned long long>(batch), r,
                      static_cast<unsigned long long>(rec[0]),
                      static_cast<unsigned long long>(rec[1]));
          return;
        }
      }
    }
  });
  cluster.run();

  std::printf("streamed %d batches x %d records (%u B) in %.1f us simulated\n",
              kBatches, kRecords, kRecordBytes,
              sim::to_us(cluster.sim().now()));
  for (const auto& [name, value] : window_counters.all()) {
    std::printf("  %-22s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  return 0;
}
