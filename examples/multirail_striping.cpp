// Spatial parallelism: one connection transparently striping frames over two
// physical links (§2.5), with out-of-order delivery and fences.
//
// Shows: throughput doubling from the second rail, the out-of-order fraction
// the striping induces, and how a backward fence pins one operation behind
// its predecessors while everything else reorders freely.
//
//   $ ./multirail_striping
#include <iostream>

#include "core/api.hpp"
#include "core/microbench.hpp"

using namespace multiedge;

static void throughput_demo() {
  std::cout << "-- one-way throughput, 64 KiB messages --\n";
  for (int rails = 1; rails <= 2; ++rails) {
    ClusterConfig cfg = rails == 1 ? config_1l_1g(2) : config_2lu_1g(2);
    MicroParams p;
    p.message_bytes = 64 * 1024;
    MicroResult r = run_micro(cfg, MicroBench::kOneWay, p);
    std::cout << "  " << rails << " rail(s): " << r.throughput_mbs
              << " MB/s, out-of-order " << r.ooo_fraction() * 100 << "%\n";
  }
}

static void fence_demo() {
  std::cout << "-- fences on a striped connection --\n";
  Cluster cluster(config_2lu_1g(2));
  const std::uint64_t src = cluster.memory(0).alloc(1 << 16);
  const std::uint64_t dst = cluster.memory(1).alloc(1 << 16);

  cluster.spawn(0, "writer", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    // A stream of independent writes: free to reorder across the two rails.
    for (int i = 0; i < 8; ++i) {
      c.rdma_write(dst + i * 4096, src + i * 4096, 4096);
    }
    // This "commit record" must not be applied before the data above:
    // backward fence. And nothing after it may overtake it: forward fence.
    OpHandle commit = c.rdma_write(
        dst, src, 64,
        static_cast<std::uint16_t>(kOpFlagBackwardFence | kOpFlagForwardFence |
                                   kOpFlagNotify));
    commit.wait();
    std::cout << "  commit applied only after all 8 data writes\n";
  });
  cluster.spawn(1, "reader", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  const auto& conn = *cluster.engine(0).connections().front();
  std::cout << "  frames sent: " << conn.counters().get("data_frames_sent")
            << " across 2 rails\n";
}

int main() {
  throughput_demo();
  fence_demo();
  return 0;
}
