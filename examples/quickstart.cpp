// Quickstart: a two-node MultiEdge cluster, one connection, and the three
// remote memory operations (write + notification, read, scatter write).
//
//   $ ./quickstart
#include <cstring>
#include <iostream>

#include "core/api.hpp"

using namespace multiedge;

int main() {
  // A 2-node cluster on a single 1-GBit/s switched Ethernet (the paper's
  // 1L-1G setup). Each node has two CPUs: one for the application, one for
  // the protocol.
  Cluster cluster(config_1l_1g(/*nodes=*/2));

  // Carve some memory on both nodes. Virtual addresses are per-node.
  const std::uint64_t src = cluster.memory(0).alloc(4096);
  const std::uint64_t dst = cluster.memory(1).alloc(4096);
  const std::uint64_t back = cluster.memory(0).alloc(4096);

  cluster.spawn(0, "initiator", [&](Endpoint& ep) {
    // Fill a local buffer.
    auto buf = ep.memory().view_mut(src, 4096);
    for (int i = 0; i < 4096; ++i) buf[i] = static_cast<std::byte>(i & 0xff);

    // Connect and issue an asynchronous remote write; ask for a completion
    // notification on the remote side (the flags bit-field of the paper's
    // RDMA_operation).
    Connection conn = ep.connect(1);
    OpHandle h = conn.rdma_write(dst, src, 4096, kOpFlagNotify);
    h.wait();  // local completion: every frame acknowledged
    std::cout << "[node 0] write complete at t=" << sim::to_us(cluster.sim().now())
              << " us\n";

    // Remote read the data straight back into another buffer.
    conn.rdma_read(back, dst, 4096).wait();
    const bool ok = std::memcmp(ep.memory().view(src, 4096).data(),
                                ep.memory().view(back, 4096).data(), 4096) == 0;
    std::cout << "[node 0] read-back " << (ok ? "matches" : "MISMATCH") << "\n";

    // Scatter write: two disjoint segments in one operation.
    ScatterSegment segs[2] = {
        {0, src, 64},
        {2048, src + 64, 64},
    };
    conn.rdma_scatter_write(dst, segs, kOpFlagNotify).wait();
    std::cout << "[node 0] scatter write complete\n";
  });

  cluster.spawn(1, "target", [&](Endpoint& ep) {
    // The target only consumes notifications; data lands in its memory
    // without any pre-posted receive buffers.
    Notification n = ep.wait_notification();
    std::cout << "[node 1] notified: " << n.size << " bytes at va=" << n.va
              << " from node " << n.src_node << "\n";
    ep.wait_notification();  // the scatter write
    std::cout << "[node 1] scatter notification received\n";
  });

  cluster.run();
  std::cout << "simulated time: " << sim::to_us(cluster.sim().now()) << " us\n";
  return 0;
}
