// Shared-memory programming on the GeNIMA-like DSM: a 1D heat-diffusion
// stencil over a shared array, domain-decomposed across four nodes with
// barrier synchronization — the style of application GeNIMA hosts, built
// entirely on MultiEdge remote memory operations underneath.
//
//   $ ./dsm_heat
#include <cmath>
#include <iostream>
#include <vector>

#include "dsm/dsm.hpp"
#include "dsm/shared_array.hpp"
#include "stats/table.hpp"

using namespace multiedge;

int main() {
  constexpr std::size_t kCells = 1 << 16;
  constexpr int kSteps = 12;

  Cluster cluster(config_1l_1g(4));
  dsm::DsmConfig dcfg;
  dcfg.shared_bytes = 8 << 20;
  dsm::DsmSystem sys(cluster, dcfg);

  // Two shared grids, ping-ponged between steps.
  const std::uint64_t grid_va[2] = {
      sys.shared_alloc(kCells * sizeof(double), 4096),
      sys.shared_alloc(kCells * sizeof(double), 4096),
  };

  sys.run([&](dsm::Dsm& d) {
    const std::size_t chunk = kCells / d.num_nodes();
    const std::size_t lo = d.rank() * chunk;
    const std::size_t hi = lo + chunk;

    // Initialize my chunk: a hot spike in the middle of the domain.
    {
      dsm::SharedArray<double> g(&d, grid_va[0], kCells);
      double* mine = g.write(lo, chunk);
      for (std::size_t i = lo; i < hi; ++i) {
        mine[i - lo] = (i == kCells / 2) ? 1e6 : 0.0;
      }
    }
    d.barrier();

    for (int step = 0; step < kSteps; ++step) {
      dsm::SharedArray<double> src(&d, grid_va[step % 2], kCells);
      dsm::SharedArray<double> dst(&d, grid_va[1 - step % 2], kCells);

      // Read my chunk plus one halo cell on each side (halo reads fetch the
      // neighbouring nodes' boundary pages).
      const std::size_t rlo = lo == 0 ? 0 : lo - 1;
      const std::size_t rhi = hi == kCells ? kCells : hi + 1;
      const double* in = src.read(rlo, rhi - rlo);
      double* out = dst.write(lo, chunk);
      for (std::size_t i = lo; i < hi; ++i) {
        const double left = i == 0 ? 0.0 : in[i - 1 - rlo];
        const double right = i + 1 == kCells ? 0.0 : in[i + 1 - rlo];
        out[i - lo] = in[i - rlo] + 0.25 * (left - 2.0 * in[i - rlo] + right);
      }
      d.compute_units(static_cast<double>(chunk), 5.0);
      d.barrier();
    }

    if (d.rank() == 0) {
      // Total heat is conserved (up to the boundary losses).
      dsm::SharedArray<double> g(&d, grid_va[kSteps % 2], kCells);
      const double* all = g.read(0, kCells);
      double total = 0;
      for (std::size_t i = 0; i < kCells; ++i) total += all[i];
      std::cout << "heat after " << kSteps << " steps: " << total
                << " (expected ~1e6)\n";
    }
    d.barrier();
  });

  const dsm::DsmNodeStats& s = sys.node_stats(1);
  std::cout << "node 1: " << s.read_faults << " read faults, "
            << s.pages_fetched << " pages fetched, " << s.diffs_flushed
            << " diffs flushed, " << s.barriers << " barriers\n"
            << "simulated time: "
            << stats::fmt_double(sim::to_ms(cluster.sim().now()), 2) << " ms\n";
  return 0;
}
