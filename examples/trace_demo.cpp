// Trace demo: run a short two-node workload with event tracing enabled and
// write a Chrome trace-event file loadable in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing.
//
//   $ ./trace_demo [out.json]      # default output: multiedge_trace.json
//
// The trace shows one "process" per node with tracks for the protocol
// thread (batch boundaries), each NIC rail (tx/rx/IRQ, wire faults), and
// each connection (op submit/complete spans, window stalls, ACK traffic),
// plus counter tracks sampled every TraceConfig::sample_interval.
#include <fstream>
#include <iostream>

#include "core/api.hpp"

using namespace multiedge;

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "multiedge_trace.json";

  // Two rails so the trace shows round-robin striping across NIC tracks.
  ClusterConfig cfg = config_2l_1g(/*nodes=*/2);
  cfg.trace.enabled = true;  // that's all it takes

  Cluster cluster(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  const std::uint64_t back = cluster.memory(0).alloc(4096);

  cluster.spawn(0, "writer", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    // A streaming write big enough to fill the window (look for window
    // stall/resume instants on the connection track)...
    c.rdma_write(dst, src, kSize, kOpFlagNotify).wait();
    // ...then a small read so the trace has op spans in both directions.
    c.rdma_read(back, dst, 4096).wait();
  });
  cluster.spawn(1, "reader", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  std::ofstream out(out_path);
  cluster.write_trace(out);
  if (!out) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }

  const trace::TraceRecorder* rec = cluster.tracer();
  std::cout << "wrote " << out_path << ": " << rec->size() << " events ("
            << rec->total_recorded() << " recorded"
            << (rec->wrapped() ? ", ring wrapped" : "") << "), "
            << cluster.time_series().size() << " counter tracks\n"
            << "open it at https://ui.perfetto.dev\n";
  return 0;
}
