// Reliability under faults (§2.4): transfers complete despite dropped
// frames, FCS-corrupted frames, and a transient link outage — recovered by
// NACK-triggered retransmissions and the coarse retransmission timeout.
//
//   $ ./failure_recovery
#include <iostream>

#include "core/api.hpp"
#include "stats/table.hpp"

using namespace multiedge;

static void run_case(const std::string& label, double drop, double corrupt,
                     bool outage) {
  ClusterConfig cfg = config_1l_1g(2);
  cfg.topology.link.drop_prob = drop;
  cfg.topology.link.corrupt_prob = corrupt;
  Cluster cluster(cfg);

  constexpr std::size_t kSize = 512 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  auto s = cluster.memory(0).view_mut(src, kSize);
  for (std::size_t i = 0; i < kSize; ++i) {
    s[i] = static_cast<std::byte>((i * 131) & 0xff);
  }
  if (outage) {
    // Kill the uplink for 4 ms in the middle of the transfer.
    cluster.network().uplink(0, 0).faults().outages.push_back(
        {sim::ms(3), sim::ms(7)});
  }

  cluster.spawn(0, "sender", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  bool delivered = false;
  cluster.spawn(1, "receiver", [&](Endpoint& ep) {
    ep.wait_notification();
    auto d = ep.memory().view(dst, kSize);
    delivered = true;
    for (std::size_t i = 0; i < kSize; ++i) {
      if (d[i] != static_cast<std::byte>((i * 131) & 0xff)) {
        delivered = false;
        break;
      }
    }
  });
  cluster.run();

  const auto agg = cluster.engine(0).aggregate_counters();
  std::cout << label << ": " << (delivered ? "delivered intact" : "CORRUPT")
            << " in " << stats::fmt_double(sim::to_ms(cluster.sim().now()), 1)
            << " ms; retransmissions=" << agg.get("retransmissions")
            << " rto_events=" << agg.get("rto_events")
            << " nacks=" << agg.get("nacks_rcvd") << "\n";
}

int main() {
  run_case("clean network        ", 0.0, 0.0, false);
  run_case("2% frame drops       ", 0.02, 0.0, false);
  run_case("1% FCS corruption    ", 0.0, 0.01, false);
  run_case("4ms link blackout    ", 0.0, 0.0, true);
  run_case("drops+corrupt+outage ", 0.02, 0.01, true);
  return 0;
}
