// Key-value store demo (src/kv): a 4-node replicated store on the striped
// dual-rail 2L-1G setup. One client per node runs a small read-heavy loop
// while one of node 2's rails is cut mid-run — traffic rides the surviving
// rail, heartbeats keep flowing, and no failover is needed (cut a node's
// ONLY rail on config_1l_1g to watch the failure detector promote a backup
// instead; see tests/kv_test.cpp BackupPromotionAcrossRailOutage). GETs from
// a non-primary node are pure one-sided RDMA — watch the kv_get_* vs
// kv_rpc_* counters at the end.
#include <cstdio>
#include <string>

#include "core/api.hpp"
#include "kv/kv.hpp"

using namespace multiedge;

int main() {
  constexpr int kNodes = 4;
  constexpr int kOpsPerClient = 200;

  ClusterConfig ccfg = config_2l_1g(kNodes);
  // Pull one of node 2's two cables for a stretch of the run.
  ccfg.topology.rail_outages.push_back({/*rail=*/0, /*node=*/2,
                                        /*start=*/sim::ms(2),
                                        /*end=*/sim::ms(6)});
  Cluster cluster(ccfg);

  kv::KvConfig cfg;
  cfg.replication = 2;        // every partition lives on two nodes
  cfg.clients_per_node = 1;
  // The detector's timeout must exceed the worst-case heartbeat stall while
  // the protocol reroutes around the dead rail, or healthy peers get
  // spuriously declared down mid-outage (try ms(2) to see exactly that).
  cfg.failure_timeout = sim::ms(20);
  kv::System sys(cluster, cfg);

  for (int node = 0; node < kNodes; ++node) {
    sys.spawn_client(node, "client", [&, node](kv::Client& c) {
      std::string got;
      for (int i = 0; i < kOpsPerClient; ++i) {
        const std::string key =
            "user" + std::to_string((node * 7 + i * 13) % 64);
        if (i % 5 == 0) {
          const kv::Status st =
              c.put(key, "value-from-n" + std::to_string(node));
          if (st != kv::Status::kOk) {
            std::printf("node %d: put %s -> %s\n", node, key.c_str(),
                        kv::status_str(st));
          }
        } else {
          const kv::Status st = c.get(key, &got);
          if (st != kv::Status::kOk && st != kv::Status::kNotFound) {
            std::printf("node %d: get %s -> %s\n", node, key.c_str(),
                        kv::status_str(st));
          }
        }
        c.pause(sim::us(50));  // think time between requests
      }
    });
  }

  cluster.run();

  std::printf("simulated time: %.2f ms\n",
              sim::to_us(cluster.sim().now()) / 1000.0);
  const stats::Counters agg = sys.aggregate_counters();
  for (const auto& [name, value] : agg.all()) {
    std::printf("  %-28s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  return 0;
}
