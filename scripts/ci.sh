#!/usr/bin/env bash
# Canonical verification entry point: configure, build, and run the tier-1
# suite. This is what CI runs on every change and what a local checkout
# should run before pushing.
#
# Usage:
#   scripts/ci.sh                      # plain build + tier1
#   MULTIEDGE_SANITIZE=ON scripts/ci.sh        # ASan+UBSan build
#   MULTIEDGE_SANITIZE=address scripts/ci.sh   # pick specific sanitizers
#   CTEST_LABEL=tier2 scripts/ci.sh            # run the stress tier instead
#   CTEST_LABEL=trace scripts/ci.sh            # just the observability tests
#   CTEST_LABEL=kv scripts/ci.sh               # just the key-value store suite
#
# Environment:
#   MULTIEDGE_SANITIZE  ""/OFF (default), ON (= address,undefined), or any
#                       value accepted by -fsanitize=
#   BUILD_DIR           build directory (default: build, or build-san when
#                       sanitizers are on)
#   CTEST_LABEL         ctest -L label to run (default: tier1)
#   MULTIEDGE_SKIP_BENCH  set non-empty to skip the Release bench smoke stage
#   BENCH_BUILD_DIR     Release build directory for the bench stage
#                       (default: build-bench)
set -euo pipefail
cd "$(dirname "$0")/.."

SAN="${MULTIEDGE_SANITIZE:-}"
case "$SAN" in
  OFF|off) SAN="" ;;
  ON|on) SAN="address,undefined" ;;
esac

if [ -n "$SAN" ]; then
  BUILD_DIR="${BUILD_DIR:-build-san}"
else
  BUILD_DIR="${BUILD_DIR:-build}"
fi
LABEL="${CTEST_LABEL:-tier1}"

# Flight-recorder postmortems from stress runs land here; CI uploads the
# directory as an artifact when a job goes red (see .github/workflows/ci.yml).
export MULTIEDGE_POSTMORTEM_DIR="${MULTIEDGE_POSTMORTEM_DIR:-$PWD/postmortems}"
mkdir -p "$MULTIEDGE_POSTMORTEM_DIR"

# Prefer Ninja for fresh build dirs; never fight an existing cache's
# generator choice.
GEN_ARGS=()
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
  GEN_ARGS+=(-G Ninja)
fi

echo "== configure ($BUILD_DIR, sanitize='${SAN:-none}')"
cmake -B "$BUILD_DIR" -S . "${GEN_ARGS[@]}" -DMULTIEDGE_SANITIZE="$SAN"

echo "== build"
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest -L $LABEL"
ctest --test-dir "$BUILD_DIR" -L "$LABEL" --output-on-failure -j "$(nproc)"

# The collective and key-value layers ride along with every tier-1 run
# (differential algorithm checks + fault tolerance; see tests/coll_test.cpp
# and tests/kv_test.cpp).
if [ "$LABEL" = "tier1" ]; then
  echo "== ctest -L coll"
  ctest --test-dir "$BUILD_DIR" -L coll --output-on-failure -j "$(nproc)"
  echo "== ctest -L kv"
  ctest --test-dir "$BUILD_DIR" -L kv --output-on-failure -j "$(nproc)"
  echo "== ctest -L member"
  ctest --test-dir "$BUILD_DIR" -L member --output-on-failure -j "$(nproc)"
  echo "== ctest -L svc"
  ctest --test-dir "$BUILD_DIR" -L svc --output-on-failure -j "$(nproc)"
  echo "== ctest -L rma"
  ctest --test-dir "$BUILD_DIR" -L rma --output-on-failure -j "$(nproc)"
fi

# A green test tier is necessary but not sufficient for the hot path: a
# Release bench smoke catches throughput regressions and — via the exact
# per-workload counter fingerprints in BENCH_simspeed.json — any behavioral
# drift in the protocol. Skipped under sanitizers (wall-clock there is
# meaningless) or when MULTIEDGE_SKIP_BENCH is set.
if [ -z "${MULTIEDGE_SKIP_BENCH:-}" ] && [ -z "$SAN" ]; then
  BENCH_DIR="${BENCH_BUILD_DIR:-build-bench}"
  BGEN_ARGS=()
  if [ ! -f "$BENCH_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
    BGEN_ARGS+=(-G Ninja)
  fi
  echo "== bench smoke ($BENCH_DIR, Release)"
  cmake -B "$BENCH_DIR" -S . "${BGEN_ARGS[@]}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BENCH_DIR" -j "$(nproc)" --target simspeed --target coll_bench \
    --target kv_bench --target svc_bench --target scale_bench --target rma_bench
  # Protocol smoke: throughput floor + exact counter fingerprints, plus the
  # small-op submission-batching gate (smallop-batched must finish >= 1.3x
  # faster in simulated time than smallop-unbatched; see bench/simspeed.cpp).
  "$BENCH_DIR"/bench/simspeed --check=BENCH_simspeed.json
  # Collective layer: headline properties (log-depth barrier wins at 16
  # nodes, ring all-reduce saturates both 2L rails) plus exact per-workload
  # counter fingerprints against the committed BENCH_coll.json.
  "$BENCH_DIR"/bench/coll_bench --check=BENCH_coll.json
  # Key-value store: zipfian one-sided GETs must get >= 1.5x throughput from
  # the second rail and hold the committed p99 tail, with exact counter
  # fingerprints against BENCH_kv.json. Also gates the PUT-heavy hot-server
  # pair: doorbell batching + selective signaling + server burst drain must
  # lift small-value throughput >= 1.3x over the unbatched run.
  "$BENCH_DIR"/bench/kv_bench --check=BENCH_kv.json
  # Serving tier: open-loop overload curves. The broker must match the
  # per-client baseline's peak goodput with >= 8x fewer connections, hold
  # >= 0.8x its peak goodput at ~2x the saturating load with explicit
  # admission rejections (not unbounded queueing) absorbing the overload,
  # and keep its accepted-op p99 below the collapsing baseline's, with
  # exact counter fingerprints against BENCH_svc.json. The artifact carries
  # the full latency-vs-offered-load and incast curves (see ci.yml upload).
  "$BENCH_DIR"/bench/svc_bench --json="$BENCH_DIR"/BENCH_svc.json \
    --check=BENCH_svc.json
  # Notified-access RMA: at 8 nodes, blocking in wait_notify must beat 1us
  # flag-polling by >= 1.3x per hop, with exact counter fingerprints
  # against BENCH_rma.json (see bench/rma_bench.cpp and DESIGN.md §17).
  "$BENCH_DIR"/bench/rma_bench --check=BENCH_rma.json
  # Scale-out: SWIM vs mesh convergence, probe-rate asymptotics at 128
  # nodes, and KV/collective scaling on hierarchical fabrics, against the
  # committed BENCH_scale.json (full sweep: the 128-node rows ARE the gate).
  "$BENCH_DIR"/bench/scale_bench --check=BENCH_scale.json
fi

echo "== OK"
